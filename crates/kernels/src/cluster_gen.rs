//! RV32 Xpulp program generators for the PMCA.
//!
//! Calling convention (all kernels):
//!
//! | register | meaning |
//! |---|---|
//! | `a0` | first input pointer |
//! | `a1` | second input pointer (weights/coefficients) |
//! | `a2` | output pointer |
//! | `a3` | primary size `n` |
//! | `a4` | secondary size / scalar bits |
//! | `a7` | number of team cores |
//!
//! Cores differentiate through the `mhartid` CSR. Work is split by rows
//! (matmuls, conv), output samples (FIR), or contiguous chunks (vector
//! kernels). Inner loops use the zero-overhead hardware loops and the
//! packed-SIMD dot products that give the PMCA its edge.

use hulkv_rv::csr::addr::MHARTID;
use hulkv_rv::inst::FReg;
use hulkv_rv::{Asm, Reg, Xlen};

fn asm() -> Asm {
    Asm::new(Xlen::Rv32)
}

/// `C = A × Bᵀ`, int8 × int8 → int32, SIMD `pv.sdotsp.b` (4 MACs/cycle)
/// with 4-column output blocking: one activation word feeds four dot-unit
/// accumulators, the register-reuse pattern PULP's optimized matmuls use
/// to approach 2 MAC/cycle/core. `n` must be a multiple of 4; rows are
/// distributed across the team.
pub fn matmul_i8(n: usize) -> Vec<u32> {
    assert!(
        n.is_multiple_of(4) && n / 4 <= 4095,
        "n must be a small multiple of 4"
    );
    let mut a = asm();
    let done = a.label();
    let loop_i = a.label();
    let loop_j = a.label();

    a.csrr(Reg::S0, MHARTID); // i = hartid
    a.bind(loop_i);
    a.bge(Reg::S0, Reg::A3, done);
    a.mul(Reg::T1, Reg::S0, Reg::A3);
    a.add(Reg::T1, Reg::T1, Reg::A0); // &A[i*n]
    a.li(Reg::S1, 0); // j = 0 (steps by 4)
    a.bind(loop_j);
    {
        // Four consecutive B^T rows.
        a.mul(Reg::T2, Reg::S1, Reg::A3);
        a.add(Reg::T2, Reg::T2, Reg::A1); // &B_T[j*n]
        a.add(Reg::S5, Reg::T2, Reg::A3); // j+1
        a.add(Reg::S6, Reg::S5, Reg::A3); // j+2
        a.add(Reg::S7, Reg::S6, Reg::A3); // j+3
        a.mv(Reg::T3, Reg::T1);
        a.li(Reg::T4, 0);
        a.li(Reg::S2, 0);
        a.li(Reg::S3, 0);
        a.li(Reg::S4, 0);
        a.lp_counti(0, (n / 4) as i64);
        let (ls, le) = (a.label(), a.label());
        a.lp_starti(0, ls);
        a.lp_endi(0, le);
        a.bind(ls);
        a.p_lw_post(Reg::T5, Reg::T3, 4); // one activation word...
        a.p_lw_post(Reg::T6, Reg::T2, 4); // ...against four weight rows
        a.pv_sdotsp_b(Reg::T4, Reg::T5, Reg::T6);
        a.p_lw_post(Reg::T6, Reg::S5, 4);
        a.pv_sdotsp_b(Reg::S2, Reg::T5, Reg::T6);
        a.p_lw_post(Reg::T6, Reg::S6, 4);
        a.pv_sdotsp_b(Reg::S3, Reg::T5, Reg::T6);
        a.p_lw_post(Reg::T6, Reg::S7, 4);
        a.pv_sdotsp_b(Reg::S4, Reg::T5, Reg::T6);
        a.bind(le);
        a.mul(Reg::T0, Reg::S0, Reg::A3);
        a.add(Reg::T0, Reg::T0, Reg::S1);
        a.slli(Reg::T0, Reg::T0, 2);
        a.add(Reg::T0, Reg::T0, Reg::A2);
        a.sw(Reg::T4, Reg::T0, 0);
        a.sw(Reg::S2, Reg::T0, 4);
        a.sw(Reg::S3, Reg::T0, 8);
        a.sw(Reg::S4, Reg::T0, 12);
        a.addi(Reg::S1, Reg::S1, 4);
        a.blt(Reg::S1, Reg::A3, loop_j);
    }
    a.add(Reg::S0, Reg::S0, Reg::A7);
    a.j(loop_i);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("matmul_i8 cluster kernel")
}

/// `C = A × Bᵀ`, int32 with `p.mac` accumulation. Rows across the team.
pub fn matmul_i32(n: usize) -> Vec<u32> {
    assert!(n <= 4095);
    let mut a = asm();
    let done = a.label();
    let loop_i = a.label();
    let loop_j = a.label();

    a.csrr(Reg::S0, MHARTID);
    a.bind(loop_i);
    a.bge(Reg::S0, Reg::A3, done);
    a.mul(Reg::T1, Reg::S0, Reg::A3);
    a.slli(Reg::T1, Reg::T1, 2);
    a.add(Reg::T1, Reg::T1, Reg::A0);
    a.li(Reg::S1, 0);
    a.bind(loop_j);
    {
        a.mul(Reg::T2, Reg::S1, Reg::A3);
        a.slli(Reg::T2, Reg::T2, 2);
        a.add(Reg::T2, Reg::T2, Reg::A1);
        a.mv(Reg::T3, Reg::T1);
        a.li(Reg::T4, 0);
        a.lp_counti(0, n as i64);
        let (ls, le) = (a.label(), a.label());
        a.lp_starti(0, ls);
        a.lp_endi(0, le);
        a.bind(ls);
        a.p_lw_post(Reg::T5, Reg::T3, 4);
        a.p_lw_post(Reg::T6, Reg::T2, 4);
        a.p_mac(Reg::T4, Reg::T5, Reg::T6);
        a.bind(le);
        a.mul(Reg::T0, Reg::S0, Reg::A3);
        a.add(Reg::T0, Reg::T0, Reg::S1);
        a.slli(Reg::T0, Reg::T0, 2);
        a.add(Reg::T0, Reg::T0, Reg::A2);
        a.sw(Reg::T4, Reg::T0, 0);
        a.addi(Reg::S1, Reg::S1, 1);
        a.blt(Reg::S1, Reg::A3, loop_j);
    }
    a.add(Reg::S0, Reg::S0, Reg::A7);
    a.j(loop_i);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("matmul_i32 cluster kernel")
}

/// `C = A × Bᵀ` on FP16 inputs with f32 accumulation (`vfdotpex.s.h`,
/// 2 MACs/cycle) and f32 outputs. `n` must be a multiple of 2.
pub fn matmul_f16(n: usize) -> Vec<u32> {
    assert!(n.is_multiple_of(2) && n / 2 <= 4095);
    let mut a = asm();
    let done = a.label();
    let loop_i = a.label();
    let loop_j = a.label();

    a.csrr(Reg::S0, MHARTID);
    a.bind(loop_i);
    a.bge(Reg::S0, Reg::A3, done);
    a.mul(Reg::T1, Reg::S0, Reg::A3);
    a.slli(Reg::T1, Reg::T1, 1); // f16 = 2 bytes
    a.add(Reg::T1, Reg::T1, Reg::A0);
    a.li(Reg::S1, 0);
    a.bind(loop_j);
    {
        a.mul(Reg::T2, Reg::S1, Reg::A3);
        a.slli(Reg::T2, Reg::T2, 1);
        a.add(Reg::T2, Reg::T2, Reg::A1);
        a.mv(Reg::T3, Reg::T1);
        a.li(Reg::T4, 0); // f32 0.0 bits
        a.lp_counti(0, (n / 2) as i64);
        let (ls, le) = (a.label(), a.label());
        a.lp_starti(0, ls);
        a.lp_endi(0, le);
        a.bind(ls);
        a.p_lw_post(Reg::T5, Reg::T3, 4); // two f16 lanes
        a.p_lw_post(Reg::T6, Reg::T2, 4);
        a.vfdotpex_s_h(Reg::T4, Reg::T5, Reg::T6);
        a.bind(le);
        a.mul(Reg::T0, Reg::S0, Reg::A3);
        a.add(Reg::T0, Reg::T0, Reg::S1);
        a.slli(Reg::T0, Reg::T0, 2); // f32 output
        a.add(Reg::T0, Reg::T0, Reg::A2);
        a.sw(Reg::T4, Reg::T0, 0);
        a.addi(Reg::S1, Reg::S1, 1);
        a.blt(Reg::S1, Reg::A3, loop_j);
    }
    a.add(Reg::S0, Reg::S0, Reg::A7);
    a.j(loop_i);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("matmul_f16 cluster kernel")
}

/// Valid 3×3 int8 convolution, `a3 = h`, `a4 = w`, int32 outputs.
/// Output rows across the team; the nine weights stay in registers and
/// every tap is a `p.mac`.
pub fn conv2d_i8() -> Vec<u32> {
    let mut a = asm();
    let done = a.label();
    let loop_y = a.label();
    let loop_x = a.label();

    // Preload the 3x3 weights into s2..s10.
    let wregs = [
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
        Reg::S8,
        Reg::S9,
        Reg::S10,
    ];
    for (i, &r) in wregs.iter().enumerate() {
        a.lb(r, Reg::A1, i as i64);
    }
    a.addi(Reg::S11, Reg::A3, -2); // oh
    a.addi(Reg::A5, Reg::A4, -2); // ow
    a.csrr(Reg::S0, MHARTID); // y

    a.bind(loop_y);
    a.bge(Reg::S0, Reg::S11, done);
    a.li(Reg::S1, 0); // x
    a.bind(loop_x);
    {
        a.mul(Reg::T0, Reg::S0, Reg::A4);
        a.add(Reg::T0, Reg::T0, Reg::S1);
        a.add(Reg::T0, Reg::T0, Reg::A0); // &img[y*w + x]
        a.li(Reg::T4, 0);
        for row in 0..3 {
            for col in 0..3 {
                a.lb(Reg::T1, Reg::T0, col as i64);
                a.p_mac(Reg::T4, Reg::T1, wregs[row * 3 + col]);
            }
            if row < 2 {
                a.add(Reg::T0, Reg::T0, Reg::A4); // next image row
            }
        }
        a.mul(Reg::T0, Reg::S0, Reg::A5);
        a.add(Reg::T0, Reg::T0, Reg::S1);
        a.slli(Reg::T0, Reg::T0, 2);
        a.add(Reg::T0, Reg::T0, Reg::A2);
        a.sw(Reg::T4, Reg::T0, 0);
        a.addi(Reg::S1, Reg::S1, 1);
        a.blt(Reg::S1, Reg::A5, loop_x);
    }
    a.add(Reg::S0, Reg::S0, Reg::A7);
    a.j(loop_y);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("conv2d_i8 cluster kernel")
}

/// FIR on int16 samples with `pv.sdotsp.h` (2 MACs/cycle); `taps` must be
/// a multiple of 2. Output samples across the team.
pub fn fir_i16(taps: usize) -> Vec<u32> {
    assert!(taps.is_multiple_of(2) && taps / 2 <= 4095);
    let mut a = asm();
    let done = a.label();
    let loop_i = a.label();

    a.csrr(Reg::S0, MHARTID);
    a.bind(loop_i);
    a.bge(Reg::S0, Reg::A3, done);
    a.slli(Reg::T0, Reg::S0, 1);
    a.add(Reg::T0, Reg::T0, Reg::A0); // &x[i]
    a.mv(Reg::T1, Reg::A1); // coeff ptr
    a.li(Reg::T4, 0);
    a.lp_counti(0, (taps / 2) as i64);
    let (ls, le) = (a.label(), a.label());
    a.lp_starti(0, ls);
    a.lp_endi(0, le);
    a.bind(ls);
    a.p_lw_post(Reg::T5, Reg::T0, 4);
    a.p_lw_post(Reg::T6, Reg::T1, 4);
    a.pv_sdotsp_h(Reg::T4, Reg::T5, Reg::T6);
    a.bind(le);
    a.slli(Reg::T2, Reg::S0, 2);
    a.add(Reg::T2, Reg::T2, Reg::A2);
    a.sw(Reg::T4, Reg::T2, 0);
    a.add(Reg::S0, Reg::S0, Reg::A7);
    a.j(loop_i);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("fir_i16 cluster kernel")
}

/// SIMD 2×2 max pool (`a3 = h`, `a4 = w`, `w` a multiple of 4): one word
/// of each input row pair, `pv.max.b` for the vertical maxima, a lane
/// shuffle + `pv.max.b` for the horizontal ones, then two `pv.extract.b`
/// stores per word. Output rows across the team.
pub fn maxpool2x2_i8() -> Vec<u32> {
    let mut a = asm();
    let done = a.label();
    let loop_y = a.label();
    let loop_x = a.label();

    a.srli(Reg::S11, Reg::A3, 1); // oh
    a.srli(Reg::A5, Reg::A4, 1); // ow
                                 // Shuffle indices [1, 0, 3, 2]: swap within lane pairs.
    a.li(Reg::S2, 0x0203_0001);
    a.li(Reg::S3, 0); // lane index 0
    a.li(Reg::S4, 2); // lane index 2
    a.csrr(Reg::S0, MHARTID); // oy
    a.bind(loop_y);
    a.bge(Reg::S0, Reg::S11, done);
    {
        // row0 = in + 2*oy*w ; row1 = row0 + w ; out = outp + oy*ow
        a.slli(Reg::T0, Reg::S0, 1);
        a.mul(Reg::T0, Reg::T0, Reg::A4);
        a.add(Reg::T0, Reg::T0, Reg::A0);
        a.add(Reg::T1, Reg::T0, Reg::A4);
        a.mul(Reg::T2, Reg::S0, Reg::A5);
        a.add(Reg::T2, Reg::T2, Reg::A2);
        a.li(Reg::S1, 0); // x (input columns, step 4)
        a.bind(loop_x);
        a.p_lw_post(Reg::T3, Reg::T0, 4); // 4 px of row 0
        a.p_lw_post(Reg::T4, Reg::T1, 4); // 4 px of row 1
        a.pv_max_b(Reg::T3, Reg::T3, Reg::T4); // vertical maxima
        a.pv_shuffle_b(Reg::T4, Reg::T3, Reg::S2); // swap pairs
        a.pv_max_b(Reg::T3, Reg::T3, Reg::T4); // horizontal maxima
        a.pv_extract_b(Reg::T5, Reg::T3, Reg::S3); // lane 0
        a.p_sb_post(Reg::T5, Reg::T2, 1);
        a.pv_extract_b(Reg::T5, Reg::T3, Reg::S4); // lane 2
        a.p_sb_post(Reg::T5, Reg::T2, 1);
        a.addi(Reg::S1, Reg::S1, 4);
        a.blt(Reg::S1, Reg::A4, loop_x);
    }
    a.add(Reg::S0, Reg::S0, Reg::A7);
    a.j(loop_y);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("maxpool cluster kernel")
}

/// Element-wise int8 ReLU, four lanes per cycle with `pv.max.sc.b`.
/// `a3` is the byte length (multiple of 4 × team size).
pub fn relu_i8() -> Vec<u32> {
    let mut a = asm();
    let done = a.label();
    let top = a.label();

    a.csrr(Reg::S0, MHARTID);
    a.slli(Reg::S0, Reg::S0, 2); // byte index
    a.slli(Reg::S1, Reg::A7, 2); // stride
    a.li(Reg::T6, 0);
    a.bind(top);
    a.bge(Reg::S0, Reg::A3, done);
    a.add(Reg::T0, Reg::A0, Reg::S0);
    a.lw(Reg::T1, Reg::T0, 0);
    a.pv_max_sc_b(Reg::T2, Reg::T1, Reg::T6);
    a.add(Reg::T3, Reg::A2, Reg::S0);
    a.sw(Reg::T2, Reg::T3, 0);
    a.add(Reg::S0, Reg::S0, Reg::S1);
    a.j(top);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("relu_i8 cluster kernel")
}

/// Single-precision dot product: core `h` reduces the contiguous chunk
/// `[h·chunk, (h+1)·chunk)` with `fmadd.s` and stores its partial to
/// `out[h]`; the host sums the partials. `n` must divide evenly.
pub fn dotp_f32(n: usize, cores: usize) -> Vec<u32> {
    assert!(n.is_multiple_of(cores));
    let chunk = n / cores;
    assert!(chunk <= 4095);
    let mut a = asm();

    a.csrr(Reg::S0, MHARTID);
    a.li(Reg::T0, chunk as i64);
    a.mul(Reg::T1, Reg::S0, Reg::T0);
    a.slli(Reg::T2, Reg::T1, 2);
    a.add(Reg::T3, Reg::A0, Reg::T2);
    a.add(Reg::T4, Reg::A1, Reg::T2);
    a.fmv_w_x(FReg(0), Reg::Zero); // acc = 0.0
    a.lp_counti(0, chunk as i64);
    let (ls, le) = (a.label(), a.label());
    a.lp_starti(0, ls);
    a.lp_endi(0, le);
    a.bind(ls);
    a.flw(FReg(1), Reg::T3, 0);
    a.flw(FReg(2), Reg::T4, 0);
    a.fmadd_s(FReg(0), FReg(1), FReg(2), FReg(0));
    a.addi(Reg::T3, Reg::T3, 4);
    a.addi(Reg::T4, Reg::T4, 4);
    a.bind(le);
    a.slli(Reg::T5, Reg::S0, 2);
    a.add(Reg::T5, Reg::T5, Reg::A2);
    a.fsw(FReg(0), Reg::T5, 0);
    a.ebreak();
    a.assemble().expect("dotp_f32 cluster kernel")
}

/// `y = α·x + y` in single precision, contiguous chunk per core; α bits
/// arrive in `a4`.
pub fn axpy_f32(n: usize, cores: usize) -> Vec<u32> {
    assert!(n.is_multiple_of(cores));
    let chunk = n / cores;
    assert!(chunk <= 4095);
    let mut a = asm();

    a.csrr(Reg::S0, MHARTID);
    a.li(Reg::T0, chunk as i64);
    a.mul(Reg::T1, Reg::S0, Reg::T0);
    a.slli(Reg::T2, Reg::T1, 2);
    a.add(Reg::T3, Reg::A0, Reg::T2); // x
    a.add(Reg::T4, Reg::A2, Reg::T2); // y (in-place)
    a.fmv_w_x(FReg(3), Reg::A4); // alpha
    a.lp_counti(0, chunk as i64);
    let (ls, le) = (a.label(), a.label());
    a.lp_starti(0, ls);
    a.lp_endi(0, le);
    a.bind(ls);
    a.flw(FReg(1), Reg::T3, 0);
    a.flw(FReg(2), Reg::T4, 0);
    a.fmadd_s(FReg(2), FReg(3), FReg(1), FReg(2));
    a.fsw(FReg(2), Reg::T4, 0);
    a.addi(Reg::T3, Reg::T3, 4);
    a.addi(Reg::T4, Reg::T4, 4);
    a.bind(le);
    a.ebreak();
    a.assemble().expect("axpy_f32 cluster kernel")
}
