//! Self-instrumented host workloads reading their own HPM counters.
//!
//! The guest-visible side of the telemetry stack: these programs write
//! `mhpmevent3..6` selectors themselves, run a load/store/branch workload,
//! then read `mhpmcounter3..6` back — exactly how perf-counter
//! bring-up code exercises CVA6's HPM block on silicon. The tests
//! cross-check every guest-read value against the simulator's own `Stats`
//! counters: by the virtual-counter construction the two must agree
//! *exactly*, not approximately.
//!
//! Counter reads are placed *before* the result stores, so each event's
//! tail contribution is statically known: the four `sd` instructions after
//! the reads retire 4 stores (and whatever D$ misses they cause) but no
//! loads and no taken branches.

use hulkv::{map, HulkV, SocError};
use hulkv_rv::csr::addr;
use hulkv_rv::{Asm, HpmEvent, Reg, Xlen};

/// The events the instrumented program selects on counters 3..6, in
/// counter order.
pub const PROBE_EVENTS: [HpmEvent; 4] = [
    HpmEvent::TakenBranch,
    HpmEvent::Load,
    HpmEvent::Store,
    HpmEvent::DcacheMiss,
];

/// Number of trailing `sd` instructions executed after the counter reads
/// (the store-count tail the cross-check must account for).
pub const RESULT_STORE_TAIL: u64 = 4;

/// What the guest program measured about itself, read back from memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HpmReadout {
    /// Taken branches up to the counter-read point.
    pub taken_branches: u64,
    /// Loads retired up to the counter-read point.
    pub loads: u64,
    /// Stores retired up to the counter-read point.
    pub stores: u64,
    /// L1D misses observed up to the counter-read point.
    pub dcache_misses: u64,
}

/// Builds the self-instrumented RV64 program.
///
/// Register protocol: `a0` = 32-byte result buffer, `a1` = scratch word
/// the loop loads/stores through, `a2` = iteration count. The program
/// programs its own event selectors, runs `a2` loop iterations (each with
/// one load, one store and one taken back-edge), reads the four counters,
/// and stores them to `a0[0..4]`.
pub fn instrumented_program() -> Vec<u32> {
    let mut a = Asm::new(Xlen::Rv64);
    // Select the events under measurement (writes are M-mode legal).
    for (i, ev) in PROBE_EVENTS.iter().enumerate() {
        a.li(Reg::T0, *ev as i64);
        a.csrw(addr::MHPMEVENT3 + i as u16, Reg::T0);
    }
    // Zero the counters so the readout is this workload's alone.
    a.li(Reg::T0, 0);
    for i in 0..PROBE_EVENTS.len() {
        a.csrw(addr::MHPMCOUNTER3 + i as u16, Reg::T0);
    }
    let top = a.label();
    a.bind(top);
    a.ld(Reg::T1, Reg::A1, 0);
    a.addi(Reg::T1, Reg::T1, 1);
    a.sd(Reg::T1, Reg::A1, 0);
    a.addi(Reg::A2, Reg::A2, -1);
    a.bnez(Reg::A2, top);
    // Read all four counters before any result store, so the tails are
    // statically known.
    a.csrr(Reg::T0, addr::MHPMCOUNTER3);
    a.csrr(Reg::T1, addr::MHPMCOUNTER3 + 1);
    a.csrr(Reg::T2, addr::MHPMCOUNTER3 + 2);
    a.csrr(Reg::T3, addr::MHPMCOUNTER3 + 3);
    a.sd(Reg::T0, Reg::A0, 0);
    a.sd(Reg::T1, Reg::A0, 8);
    a.sd(Reg::T2, Reg::A0, 16);
    a.sd(Reg::T3, Reg::A0, 24);
    a.ebreak();
    a.assemble().expect("assemble instrumented program")
}

/// Runs the instrumented program on `soc` and returns the guest's own
/// counter readings.
///
/// # Errors
///
/// Propagates SoC and execution errors.
pub fn run_instrumented(soc: &mut HulkV, iters: u64) -> Result<HpmReadout, SocError> {
    let result = map::SHARED_BASE;
    let scratch = result + 64;
    soc.write_mem(result, &[0u8; 72])?;
    soc.run_host_program(
        &instrumented_program(),
        |core| {
            core.set_reg(Reg::A0, result);
            core.set_reg(Reg::A1, scratch);
            core.set_reg(Reg::A2, iters);
        },
        1_000_000_000,
    )?;
    let mut buf = [0u8; 32];
    soc.read_mem(result, &mut buf)?;
    let word = |i: usize| u64::from_le_bytes(buf[i * 8..(i + 1) * 8].try_into().unwrap());
    Ok(HpmReadout {
        taken_branches: word(0),
        loads: word(1),
        stores: word(2),
        dcache_misses: word(3),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{Kernel, KernelParams};
    use hulkv::SocConfig;

    #[test]
    fn guest_hpm_readout_matches_simulator_stats_exactly() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let guest = run_instrumented(&mut soc, 500).unwrap();
        let stats = soc.host().core().stats();
        // No branch and no load executes after the counter reads: exact.
        assert_eq!(guest.taken_branches, stats.get("taken_branches"));
        assert_eq!(guest.loads, stats.get("loads"));
        // Exactly the four result stores retire after the read.
        assert_eq!(guest.stores + RESULT_STORE_TAIL, stats.get("stores"));
        // The result stores may add D$ misses after the read: bounded.
        let final_misses = soc.host().l1d_stats().get("misses");
        assert!(guest.dcache_misses <= final_misses);
        assert!(guest.loads >= 500, "each iteration loads once");
        assert!(
            guest.taken_branches >= 499,
            "each iteration but the last branches back"
        );
    }

    #[test]
    fn arming_hpm_selectors_is_cycle_neutral_on_figure6_workloads() {
        // The virtual-counter scheme costs zero pipeline cycles: a
        // Figure-6 kernel runs cycle-bit-identical whether every HPM
        // selector is armed (via CSR state, no extra instructions) or all
        // are left at their reset value of 0.
        let run = |armed: bool| {
            let mut soc = HulkV::new(SocConfig::default()).unwrap();
            if armed {
                let csrs = soc.host_mut().core_mut().csrs_mut();
                for (i, ev) in PROBE_EVENTS.iter().enumerate() {
                    csrs.write(addr::MHPMEVENT3 + i as u16, *ev as u64);
                }
            }
            let p = KernelParams::tiny();
            let host = Kernel::MatMulI8.run_on_host(&mut soc, &p).unwrap();
            let off = Kernel::MatMulI8.run_on_cluster(&mut soc, &p, 8).unwrap();
            assert!(host.verified && off.verified);
            (
                host.cycles,
                off.offload.total_soc_cycles,
                soc.host().core().instret(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn timeline_sampler_is_cycle_neutral_on_figure6_workloads() {
        // Same guarantee for the SoC-wide sampler: a sampled Figure-6 run
        // (host + offload) retires in exactly the cycles of an unsampled
        // one — the sampler only reads counters, never steps the model.
        let run = |sampled: bool| {
            let mut soc = HulkV::new(SocConfig::default()).unwrap();
            if sampled {
                soc.enable_timeline(256);
            }
            let p = KernelParams::tiny();
            let host = Kernel::Conv2dI8.run_on_host(&mut soc, &p).unwrap();
            let off = Kernel::Conv2dI8.run_on_cluster(&mut soc, &p, 8).unwrap();
            assert!(host.verified && off.verified);
            if sampled {
                assert!(!soc.timeline().unwrap().is_empty());
            }
            (
                host.cycles,
                off.offload.total_soc_cycles,
                off.kernel_cycles,
                soc.host().core().instret(),
            )
        };
        assert_eq!(run(true), run(false));
    }
}
