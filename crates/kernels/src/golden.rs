//! Scalar Rust reference implementations of every DSP kernel.
//!
//! Both the RV64 host programs and the RV32 cluster programs are verified
//! bit-for-bit (integer) or within half-precision tolerance (FP16) against
//! these functions.

use hulkv_rv::fp16::{f16_to_f32, f32_to_f16};

/// `C = A × Bᵀ` on int8 inputs with int32 accumulation.
///
/// `b_t` is the transposed operand (row `j` of `b_t` is column `j` of `B`),
/// the layout both generated programs use so dot products walk contiguous
/// memory.
///
/// # Panics
///
/// Panics if the slices are not `n × n`.
///
/// # Example
///
/// ```
/// let a = vec![1i8; 4]; // 2x2 of ones
/// let c = hulkv_kernels::golden::matmul_i8(&a, &a, 2);
/// assert_eq!(c, vec![2; 4]);
/// ```
pub fn matmul_i8(a: &[i8], b_t: &[i8], n: usize) -> Vec<i32> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b_t.len(), n * n);
    let mut c = vec![0i32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i32;
            for k in 0..n {
                acc = acc.wrapping_add(a[i * n + k] as i32 * b_t[j * n + k] as i32);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// `C = A × Bᵀ` on int32 inputs with wrapping int32 accumulation.
///
/// # Panics
///
/// Panics if the slices are not `n × n`.
pub fn matmul_i32(a: &[i32], b_t: &[i32], n: usize) -> Vec<i32> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b_t.len(), n * n);
    let mut c = vec![0i32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i32;
            for k in 0..n {
                acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b_t[j * n + k]));
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// `C = A × Bᵀ` on packed FP16 inputs, accumulated in f32 and rounded back
/// to FP16 — the numerics of `vfdotpex.s.h`.
///
/// Inputs are raw f16 bit patterns.
///
/// # Panics
///
/// Panics if the slices are not `n × n`.
pub fn matmul_f16(a: &[u16], b_t: &[u16], n: usize) -> Vec<u16> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b_t.len(), n * n);
    let mut c = vec![0u16; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0f32;
            for k in 0..n {
                acc += f16_to_f32(a[i * n + k]) * f16_to_f32(b_t[j * n + k]);
            }
            c[i * n + j] = f32_to_f16(acc);
        }
    }
    c
}

/// Valid 2D convolution of an `h × w` int8 image with a 3×3 int8 kernel,
/// producing an `(h-2) × (w-2)` int32 map.
///
/// # Panics
///
/// Panics on inconsistent sizes or `h, w < 3`.
pub fn conv2d_i8(image: &[i8], weights: &[i8], h: usize, w: usize) -> Vec<i32> {
    assert_eq!(image.len(), h * w);
    assert_eq!(weights.len(), 9);
    assert!(h >= 3 && w >= 3);
    let (oh, ow) = (h - 2, w - 2);
    let mut out = vec![0i32; oh * ow];
    for y in 0..oh {
        for x in 0..ow {
            let mut acc = 0i32;
            for ky in 0..3 {
                for kx in 0..3 {
                    acc = acc.wrapping_add(
                        image[(y + ky) * w + (x + kx)] as i32 * weights[ky * 3 + kx] as i32,
                    );
                }
            }
            out[y * ow + x] = acc;
        }
    }
    out
}

/// FIR filter: `y[i] = Σ_t x[i+t]·h[t]` over int16 samples with int32
/// accumulation (`taps` must divide into pairs for the SIMD variant).
///
/// # Panics
///
/// Panics if `x.len() < taps`.
pub fn fir_i16(x: &[i16], coeff: &[i16]) -> Vec<i32> {
    let taps = coeff.len();
    assert!(x.len() >= taps);
    let n = x.len() - taps + 1;
    let mut y = vec![0i32; n];
    for i in 0..n {
        let mut acc = 0i32;
        for (t, &c) in coeff.iter().enumerate() {
            acc = acc.wrapping_add(x[i + t] as i32 * c as i32);
        }
        y[i] = acc;
    }
    y
}

/// Element-wise ReLU on int8 data.
pub fn relu_i8(x: &[i8]) -> Vec<i8> {
    x.iter().map(|&v| v.max(0)).collect()
}

/// 2×2 max pooling with stride 2 over an `h × w` int8 map (`h`, `w` even).
///
/// # Panics
///
/// Panics on inconsistent sizes or odd dimensions.
pub fn maxpool2x2_i8(x: &[i8], h: usize, w: usize) -> Vec<i8> {
    assert_eq!(x.len(), h * w);
    assert!(h.is_multiple_of(2) && w.is_multiple_of(2));
    let (oh, ow) = (h / 2, w / 2);
    let mut out = vec![0i8; oh * ow];
    for oy in 0..oh {
        for ox in 0..ow {
            let (y, xx) = (2 * oy, 2 * ox);
            out[oy * ow + ox] = x[y * w + xx]
                .max(x[y * w + xx + 1])
                .max(x[(y + 1) * w + xx])
                .max(x[(y + 1) * w + xx + 1]);
        }
    }
    out
}

/// Single-precision dot product.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dotp_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let mut acc = 0f32;
    for i in 0..a.len() {
        acc = a[i].mul_add(b[i], acc);
    }
    acc
}

/// `y = α·x + y` in single precision.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn axpy_f32(alpha: f32, x: &[f32], y: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(&xv, &yv)| alpha.mul_add(xv, yv))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_i8_identity() {
        let n = 4;
        let mut a = vec![0i8; n * n];
        for i in 0..n {
            a[i * n + i] = 1;
        }
        let b: Vec<i8> = (0..(n * n) as i32).map(|v| v as i8).collect();
        // identity * B^T: C[i][j] = B^T[j][i] = B[i][j].
        let c = matmul_i8(&a, &b, n);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(c[i * n + j], b[j * n + i] as i32);
            }
        }
    }

    #[test]
    fn matmul_i32_wraps() {
        let a = vec![i32::MAX, 0, 0, i32::MAX];
        let b = vec![2, 0, 0, 2];
        let c = matmul_i32(&a, &b, 2);
        assert_eq!(c[0], i32::MAX.wrapping_mul(2));
    }

    #[test]
    fn matmul_f16_matches_f32_for_small_values() {
        let n = 2;
        let a: Vec<u16> = [1.0f32, 2.0, 3.0, 4.0]
            .iter()
            .map(|&v| hulkv_rv::fp16::f32_to_f16(v))
            .collect();
        let c = matmul_f16(&a, &a, n);
        // [1 2; 3 4] x [1 2; 3 4]^T^T ... with b_t = a: C[0][0] = 1*1+2*2 = 5.
        assert_eq!(f16_to_f32(c[0]), 5.0);
        assert_eq!(f16_to_f32(c[3]), 25.0);
    }

    #[test]
    fn conv2d_flat_image() {
        let image = vec![1i8; 25];
        let weights = vec![1i8; 9];
        let out = conv2d_i8(&image, &weights, 5, 5);
        assert_eq!(out, vec![9i32; 9]);
    }

    #[test]
    fn fir_impulse_recovers_coefficients() {
        let mut x = vec![0i16; 20];
        x[0] = 1;
        let coeff = vec![3i16, -2, 5, 7];
        let y = fir_i16(&x, &coeff);
        assert_eq!(y[0], 3);
        // y[i] picks up h[0] applied to x[i]; the impulse at x[0] appears
        // reversed through the taps.
        assert_eq!(y.len(), 17);
    }

    #[test]
    fn maxpool_picks_window_maxima() {
        #[rustfmt::skip]
        let x: Vec<i8> = vec![
            1, 5, -3, -4,
            2, 0, -1, -8,
            9, 9, 0, 0,
            9, 9, 0, 7,
        ];
        assert_eq!(maxpool2x2_i8(&x, 4, 4), vec![5, -1, 9, 7]);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(relu_i8(&[-5, 0, 7, -128, 127]), vec![0, 0, 7, 0, 127]);
    }

    #[test]
    fn dotp_and_axpy() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![4.0f32, 5.0, 6.0];
        assert_eq!(dotp_f32(&a, &b), 32.0);
        assert_eq!(axpy_f32(2.0, &a, &b), vec![6.0, 9.0, 12.0]);
    }
}
