//! The five CPU-centric IoT benchmarks of Figure 8, plus a
//! Dhrystone-style integer mix used by the Figure-9 CCR table.
//!
//! All run on the CVA6 host with their working sets in main memory, which
//! is what makes the memory configuration (DDR4/HyperRAM × LLC) matter.

use crate::data;
use hulkv::{map, HulkV, MemorySetup, SocConfig, SocError};
use hulkv_rv::{Asm, Reg, Xlen};
use hulkv_sim::{Cycles, SplitMix64};

/// The CPU-centric benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IotBenchmark {
    /// Bitwise CRC-32 (poly `0xEDB88320`) over a DRAM buffer.
    Crc32,
    /// Shell sort of a `u32` array.
    Sort,
    /// Random pointer chase through a linked list (latency-bound).
    PointerChase,
    /// 64-tap FIR over a stream of int16 samples.
    Fir64,
    /// Row-major + column-major walks of an int32 matrix.
    MatrixWalk,
    /// Dhrystone-style register-resident integer mix (compute-bound).
    Dhrystone,
}

impl IotBenchmark {
    /// The five benchmarks of Figure 8, in display order.
    pub const FIGURE8: [IotBenchmark; 5] = [
        IotBenchmark::Crc32,
        IotBenchmark::Sort,
        IotBenchmark::PointerChase,
        IotBenchmark::Fir64,
        IotBenchmark::MatrixWalk,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            IotBenchmark::Crc32 => "crc32",
            IotBenchmark::Sort => "sort",
            IotBenchmark::PointerChase => "ptr-chase",
            IotBenchmark::Fir64 => "fir64",
            IotBenchmark::MatrixWalk => "mat-walk",
            IotBenchmark::Dhrystone => "dhrystone",
        }
    }
}

/// One benchmark execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct IotRun {
    /// Benchmark.
    pub bench: IotBenchmark,
    /// Memory configuration.
    pub setup: MemorySetup,
    /// Host-core cycles.
    pub cycles: Cycles,
    /// L1 data-cache miss ratio observed.
    pub l1d_miss_ratio: f64,
    /// Bytes actually read from the main-memory device.
    pub dram_bytes_read: u64,
    /// Functional check outcome.
    pub verified: bool,
}

/// Size scale: 1 = the benchmark sizes used for the figures; tests use
/// smaller scales for speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale(pub usize);

impl Scale {
    fn crc_bytes(self) -> usize {
        16 * 1024 * self.0
    }
    fn sort_elems(self) -> usize {
        2048 * self.0
    }
    fn chase_nodes(self) -> usize {
        // 64 kB of 64-byte nodes: larger than the L1D, inside the LLC —
        // the locality class of real IoT list traversals.
        1024 * self.0
    }
    fn chase_steps(self) -> usize {
        32768 * self.0
    }
    fn fir_samples(self) -> usize {
        8192 * self.0
    }
    fn matrix_dim(self) -> usize {
        128 * self.0
    }
    fn dhry_iters(self) -> usize {
        20_000 * self.0
    }
}

const DATA: u64 = map::DRAM_BASE + 0x0300_0000;

impl IotBenchmark {
    /// Runs the benchmark on a fresh SoC with the given memory setup.
    ///
    /// # Errors
    ///
    /// Propagates SoC construction and execution errors.
    pub fn run(self, setup: MemorySetup, scale: Scale) -> Result<IotRun, SocError> {
        let mut soc = HulkV::new(SocConfig::with_memory_setup(setup))?;
        let (program, input, expected) = self.prepare(scale);
        soc.write_mem(DATA, &input)?;
        let dram_before = soc.dram_stats().get("bytes_read");
        let cycles = soc.run_host_program(
            &program,
            |core| {
                core.set_reg(Reg::A0, DATA);
            },
            20_000_000_000,
        )?;
        let verified = match expected {
            Expect::RegA0(v) => soc.host().core().reg(Reg::A0) == v,
            Expect::SortedU32(len) => {
                let mut buf = vec![0u8; len * 4];
                soc.read_mem(DATA, &mut buf)?;
                let vals: Vec<u32> = buf
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("chunk")))
                    .collect();
                vals.windows(2).all(|w| w[0] <= w[1])
            }
            Expect::None => true,
        };
        Ok(IotRun {
            bench: self,
            setup,
            cycles,
            l1d_miss_ratio: soc.host().l1d_miss_ratio(),
            dram_bytes_read: soc.dram_stats().get("bytes_read") - dram_before,
            verified,
        })
    }

    fn prepare(self, scale: Scale) -> (Vec<u32>, Vec<u8>, Expect) {
        match self {
            IotBenchmark::Crc32 => {
                let n = scale.crc_bytes();
                let mut buf = vec![0u8; n];
                SplitMix64::new(0xC2C).fill_bytes(&mut buf);
                let expect = software_crc32(&buf);
                (crc32_program(n), buf, Expect::RegA0(expect as u64))
            }
            IotBenchmark::Sort => {
                let n = scale.sort_elems();
                let vals: Vec<u32> = {
                    let mut r = SplitMix64::new(0x5027);
                    (0..n).map(|_| r.next_u32()).collect()
                };
                let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
                (shell_sort_program(n), bytes, Expect::SortedU32(n))
            }
            IotBenchmark::PointerChase => {
                let nodes = scale.chase_nodes();
                let steps = scale.chase_steps();
                // A random cycle through `nodes` 64-byte nodes; node i
                // stores the byte offset of its successor at offset 0.
                let mut order: Vec<u64> = (1..nodes as u64).collect();
                let mut r = SplitMix64::new(0xCAFE);
                for i in (1..order.len()).rev() {
                    order.swap(i, r.next_below(i as u64 + 1) as usize);
                }
                let mut next = vec![0u64; nodes];
                let mut cur = 0u64;
                for &n in &order {
                    next[cur as usize] = n * 64;
                    cur = n;
                }
                next[cur as usize] = 0;
                let mut bytes = vec![0u8; nodes * 64];
                for (i, &n) in next.iter().enumerate() {
                    bytes[i * 64..i * 64 + 8].copy_from_slice(&n.to_le_bytes());
                }
                (chase_program(steps), bytes, Expect::None)
            }
            IotBenchmark::Fir64 => {
                let n = scale.fir_samples();
                let x = data::i16_inputs(0xF16, n + 63);
                let c = data::i16_inputs(0xF17, 64);
                let mut bytes = data::i16_bytes(&c);
                bytes.extend(data::i16_bytes(&x));
                (fir64_program(n), bytes, Expect::None)
            }
            IotBenchmark::MatrixWalk => {
                let dim = scale.matrix_dim();
                let m = data::i32_inputs(0x3A7, dim * dim);
                let mut row_sum = 0i64;
                for v in &m {
                    row_sum = row_sum.wrapping_add(*v as i64);
                }
                // Row walk + column walk touch every element once each.
                let expect = row_sum.wrapping_mul(2) as u64;
                (
                    matrix_walk_program(dim),
                    data::i32_bytes(&m),
                    Expect::RegA0(expect),
                )
            }
            IotBenchmark::Dhrystone => {
                let iters = scale.dhry_iters();
                (dhrystone_program(iters), Vec::new(), Expect::None)
            }
        }
    }
}

enum Expect {
    RegA0(u64),
    SortedU32(usize),
    None,
}

/// Every IoT benchmark program at unit scale — the host-side input set
/// for `hulkv-lint` (all six execute at `map::HOST_CODE` on the RV64
/// host, see [`IotBenchmark::run`]).
pub fn lint_catalog() -> Vec<crate::suite::LintProgram> {
    let scale = Scale(1);
    let all = [
        IotBenchmark::Crc32,
        IotBenchmark::Sort,
        IotBenchmark::PointerChase,
        IotBenchmark::Fir64,
        IotBenchmark::MatrixWalk,
        IotBenchmark::Dhrystone,
    ];
    all.iter()
        .map(|&b| crate::suite::LintProgram {
            name: format!("iot/{}", b.name()),
            words: b.prepare(scale).0,
            cluster: false,
        })
        .collect()
}

/// Reference CRC-32 (reflected, poly `0xEDB88320`), matching the generated
/// program.
pub fn software_crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn crc32_program(n: usize) -> Vec<u32> {
    let mut a = Asm::new(Xlen::Rv64);
    a.li(Reg::T0, -1); // crc = 0xFFFF_FFFF (as u32)
    a.li(Reg::S0, n as i64);
    a.mv(Reg::T1, Reg::A0);
    a.li(Reg::S2, 0xEDB8_8320u32 as i64);
    let byte_loop = a.label();
    a.bind(byte_loop);
    a.lbu(Reg::T2, Reg::T1, 0);
    a.xor(Reg::T0, Reg::T0, Reg::T2);
    for _ in 0..8 {
        // mask = -(crc & 1); crc = (crc >> 1) ^ (poly & mask)
        a.andi(Reg::T3, Reg::T0, 1);
        a.neg(Reg::T3, Reg::T3);
        a.and(Reg::T3, Reg::T3, Reg::S2);
        a.srli(Reg::T0, Reg::T0, 1);
        // keep it a 32-bit crc
        a.li(Reg::T4, 0x7FFF_FFFF);
        a.and(Reg::T0, Reg::T0, Reg::T4);
        a.xor(Reg::T0, Reg::T0, Reg::T3);
    }
    a.addi(Reg::T1, Reg::T1, 1);
    a.addi(Reg::S0, Reg::S0, -1);
    a.bnez(Reg::S0, byte_loop);
    // a0 = !crc (32-bit)
    a.xori(Reg::T0, Reg::T0, -1);
    a.li(Reg::T4, 0xFFFF_FFFFu32 as i64);
    a.and(Reg::A0, Reg::T0, Reg::T4);
    a.ebreak();
    a.assemble().expect("crc32 program")
}

fn shell_sort_program(n: usize) -> Vec<u32> {
    // Shell sort with gap sequence n/2, n/4, ..., 1 over u32 values at a0.
    let mut a = Asm::new(Xlen::Rv64);
    a.li(Reg::S0, (n / 2) as i64); // gap
    a.li(Reg::S1, n as i64);
    let gap_loop = a.label();
    let done = a.label();
    a.bind(gap_loop);
    a.beqz(Reg::S0, done);
    // for i = gap; i < n; i++
    a.mv(Reg::S2, Reg::S0);
    let i_loop = a.label();
    let i_done = a.label();
    a.bind(i_loop);
    a.bge(Reg::S2, Reg::S1, i_done);
    // tmp = a[i]; j = i
    a.slli(Reg::T0, Reg::S2, 2);
    a.add(Reg::T0, Reg::T0, Reg::A0);
    a.lwu(Reg::T1, Reg::T0, 0); // tmp
    a.mv(Reg::T2, Reg::S2); // j
    let shift_loop = a.label();
    let shift_done = a.label();
    a.bind(shift_loop);
    a.blt(Reg::T2, Reg::S0, shift_done); // j < gap
                                         // t3 = a[j-gap]
    a.sub(Reg::T4, Reg::T2, Reg::S0);
    a.slli(Reg::T5, Reg::T4, 2);
    a.add(Reg::T5, Reg::T5, Reg::A0);
    a.lwu(Reg::T3, Reg::T5, 0);
    a.bgeu(Reg::T1, Reg::T3, shift_done); // tmp >= a[j-gap]: stop
                                          // a[j] = a[j-gap]; j -= gap
    a.slli(Reg::T6, Reg::T2, 2);
    a.add(Reg::T6, Reg::T6, Reg::A0);
    a.sw(Reg::T3, Reg::T6, 0);
    a.mv(Reg::T2, Reg::T4);
    a.j(shift_loop);
    a.bind(shift_done);
    // a[j] = tmp
    a.slli(Reg::T6, Reg::T2, 2);
    a.add(Reg::T6, Reg::T6, Reg::A0);
    a.sw(Reg::T1, Reg::T6, 0);
    a.addi(Reg::S2, Reg::S2, 1);
    a.j(i_loop);
    a.bind(i_done);
    a.srli(Reg::S0, Reg::S0, 1);
    a.j(gap_loop);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("shell sort program")
}

fn chase_program(steps: usize) -> Vec<u32> {
    let mut a = Asm::new(Xlen::Rv64);
    a.li(Reg::S0, steps as i64);
    a.mv(Reg::T0, Reg::A0); // current node
    let top = a.label();
    a.bind(top);
    a.ld(Reg::T1, Reg::T0, 0); // next offset
    a.add(Reg::T0, Reg::A0, Reg::T1);
    a.addi(Reg::S0, Reg::S0, -1);
    a.bnez(Reg::S0, top);
    a.mv(Reg::A0, Reg::T0);
    a.ebreak();
    a.assemble().expect("chase program")
}

fn fir64_program(n: usize) -> Vec<u32> {
    // Coefficients at a0 (64 × i16), samples at a0+128.
    let mut a = Asm::new(Xlen::Rv64);
    a.li(Reg::S0, n as i64);
    a.li(Reg::S1, 0); // i
    a.li(Reg::A1, 0); // checksum
    let outer = a.label();
    let done = a.label();
    a.bind(outer);
    a.bge(Reg::S1, Reg::S0, done);
    a.slli(Reg::T0, Reg::S1, 1);
    a.add(Reg::T0, Reg::T0, Reg::A0);
    a.addi(Reg::T0, Reg::T0, 128); // &x[i]
    a.mv(Reg::T1, Reg::A0); // coeffs
    a.li(Reg::T4, 0);
    a.li(Reg::S2, 64);
    let tap = a.label();
    a.bind(tap);
    a.lh(Reg::T5, Reg::T0, 0);
    a.lh(Reg::T6, Reg::T1, 0);
    a.mulw(Reg::T5, Reg::T5, Reg::T6);
    a.addw(Reg::T4, Reg::T4, Reg::T5);
    a.addi(Reg::T0, Reg::T0, 2);
    a.addi(Reg::T1, Reg::T1, 2);
    a.addi(Reg::S2, Reg::S2, -1);
    a.bnez(Reg::S2, tap);
    a.addw(Reg::A1, Reg::A1, Reg::T4);
    a.addi(Reg::S1, Reg::S1, 1);
    a.j(outer);
    a.bind(done);
    a.mv(Reg::A0, Reg::A1);
    a.ebreak();
    a.assemble().expect("fir64 program")
}

fn matrix_walk_program(dim: usize) -> Vec<u32> {
    let mut a = Asm::new(Xlen::Rv64);
    a.li(Reg::S0, dim as i64);
    a.li(Reg::A1, 0); // sum
                      // Row-major walk.
    a.mv(Reg::T0, Reg::A0);
    a.li(Reg::T1, (dim * dim) as i64);
    let row = a.label();
    a.bind(row);
    a.lw(Reg::T2, Reg::T0, 0);
    a.add(Reg::A1, Reg::A1, Reg::T2);
    a.addi(Reg::T0, Reg::T0, 4);
    a.addi(Reg::T1, Reg::T1, -1);
    a.bnez(Reg::T1, row);
    // Column-major walk: for c in 0..dim { for r in 0..dim { m[r*dim+c] } }
    a.li(Reg::S1, 0); // c
    let col_outer = a.label();
    let done = a.label();
    a.bind(col_outer);
    a.bge(Reg::S1, Reg::S0, done);
    a.slli(Reg::T0, Reg::S1, 2);
    a.add(Reg::T0, Reg::T0, Reg::A0);
    a.slli(Reg::T3, Reg::S0, 2); // row stride bytes
    a.mv(Reg::T1, Reg::S0);
    let col_inner = a.label();
    a.bind(col_inner);
    a.lw(Reg::T2, Reg::T0, 0);
    a.add(Reg::A1, Reg::A1, Reg::T2);
    a.add(Reg::T0, Reg::T0, Reg::T3);
    a.addi(Reg::T1, Reg::T1, -1);
    a.bnez(Reg::T1, col_inner);
    a.addi(Reg::S1, Reg::S1, 1);
    a.j(col_outer);
    a.bind(done);
    a.mv(Reg::A0, Reg::A1);
    a.ebreak();
    a.assemble().expect("matrix walk program")
}

fn dhrystone_program(iters: usize) -> Vec<u32> {
    // A register-resident mix of ALU, shifts, compares and short branches
    // in Dhrystone proportions — deliberately cache-friendly.
    let mut a = Asm::new(Xlen::Rv64);
    a.li(Reg::S0, iters as i64);
    a.li(Reg::T0, 3);
    a.li(Reg::T1, 17);
    let top = a.label();
    a.bind(top);
    a.add(Reg::T2, Reg::T0, Reg::T1);
    a.slli(Reg::T3, Reg::T2, 3);
    a.xor(Reg::T4, Reg::T3, Reg::T0);
    a.sub(Reg::T5, Reg::T4, Reg::T1);
    a.srli(Reg::T6, Reg::T5, 2);
    a.or(Reg::T0, Reg::T6, Reg::T2);
    a.andi(Reg::T0, Reg::T0, 0xFF);
    a.slt(Reg::T2, Reg::T0, Reg::T1);
    a.add(Reg::T1, Reg::T1, Reg::T2);
    a.addi(Reg::S0, Reg::S0, -1);
    a.bnez(Reg::S0, top);
    a.ebreak();
    a.assemble().expect("dhrystone program")
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: Scale = Scale(1);

    #[test]
    fn crc32_verifies() {
        let r = IotBenchmark::Crc32
            .run(MemorySetup::HyperWithLlc, Scale(1))
            .unwrap();
        assert!(r.verified, "crc mismatch");
        assert!(r.cycles.get() > 0);
    }

    #[test]
    fn crc32_reference_known_vector() {
        // CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(software_crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn sort_produces_sorted_output() {
        let r = IotBenchmark::Sort.run(MemorySetup::DdrWithLlc, S).unwrap();
        assert!(r.verified, "array not sorted");
    }

    #[test]
    fn matrix_walk_checksum() {
        let r = IotBenchmark::MatrixWalk
            .run(MemorySetup::HyperWithLlc, S)
            .unwrap();
        assert!(r.verified);
    }

    #[test]
    fn pointer_chase_is_latency_bound() {
        let hyper = IotBenchmark::PointerChase
            .run(MemorySetup::HyperOnly, S)
            .unwrap();
        let ddr = IotBenchmark::PointerChase
            .run(MemorySetup::DdrOnly, S)
            .unwrap();
        // Without a cache, every hop pays the full memory latency, and
        // HyperRAM latency is several times DDR latency.
        assert!(hyper.cycles.get() > 2 * ddr.cycles.get());
    }

    #[test]
    fn dhrystone_is_memory_insensitive() {
        let hyper = IotBenchmark::Dhrystone
            .run(MemorySetup::HyperOnly, S)
            .unwrap();
        let ddr = IotBenchmark::Dhrystone
            .run(MemorySetup::DdrOnly, S)
            .unwrap();
        let ratio = hyper.cycles.get() as f64 / ddr.cycles.get() as f64;
        assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn llc_closes_the_gap_on_fir64() {
        let with = IotBenchmark::Fir64
            .run(MemorySetup::HyperWithLlc, S)
            .unwrap();
        let ddr_with = IotBenchmark::Fir64.run(MemorySetup::DdrWithLlc, S).unwrap();
        let ratio = with.cycles.get() as f64 / ddr_with.cycles.get() as f64;
        assert!(ratio < 1.2, "Hyper+LLC vs DDR+LLC = {ratio}");
    }
}
