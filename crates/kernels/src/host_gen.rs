//! Scalar RV64 program generators for the CVA6 host.
//!
//! Same calling convention as [`crate::cluster_gen`] (`a0`/`a1` inputs,
//! `a2` output, `a3`/`a4` sizes), but plain RV64 IMAFD: CVA6 has no SIMD
//! and no hardware loops, so these are the tight scalar loops a `-O3`
//! compiler would emit — the baseline side of Figure 6.

use hulkv_rv::inst::FReg;
use hulkv_rv::{Asm, Reg, Xlen};

fn asm() -> Asm {
    Asm::new(Xlen::Rv64)
}

/// Scalar int8 `C = A × Bᵀ`.
pub fn matmul_i8() -> Vec<u32> {
    let mut a = asm();
    let done = a.label();
    let loop_i = a.label();
    let loop_j = a.label();
    let loop_k = a.label();

    a.li(Reg::S0, 0); // i
    a.bind(loop_i);
    a.bge(Reg::S0, Reg::A3, done);
    a.li(Reg::S1, 0); // j
    a.bind(loop_j);
    {
        a.mul(Reg::T1, Reg::S0, Reg::A3);
        a.add(Reg::T1, Reg::T1, Reg::A0);
        a.mul(Reg::T2, Reg::S1, Reg::A3);
        a.add(Reg::T2, Reg::T2, Reg::A1);
        a.li(Reg::T4, 0);
        a.li(Reg::S2, 0); // k
        a.bind(loop_k);
        a.lb(Reg::T5, Reg::T1, 0);
        a.lb(Reg::T6, Reg::T2, 0);
        a.mulw(Reg::T5, Reg::T5, Reg::T6);
        a.addw(Reg::T4, Reg::T4, Reg::T5);
        a.addi(Reg::T1, Reg::T1, 1);
        a.addi(Reg::T2, Reg::T2, 1);
        a.addi(Reg::S2, Reg::S2, 1);
        a.blt(Reg::S2, Reg::A3, loop_k);
        a.mul(Reg::T0, Reg::S0, Reg::A3);
        a.add(Reg::T0, Reg::T0, Reg::S1);
        a.slli(Reg::T0, Reg::T0, 2);
        a.add(Reg::T0, Reg::T0, Reg::A2);
        a.sw(Reg::T4, Reg::T0, 0);
        a.addi(Reg::S1, Reg::S1, 1);
        a.blt(Reg::S1, Reg::A3, loop_j);
    }
    a.addi(Reg::S0, Reg::S0, 1);
    a.j(loop_i);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("matmul_i8 host kernel")
}

/// Scalar int32 `C = A × Bᵀ`.
pub fn matmul_i32() -> Vec<u32> {
    let mut a = asm();
    let done = a.label();
    let loop_i = a.label();
    let loop_j = a.label();
    let loop_k = a.label();

    a.li(Reg::S0, 0);
    a.bind(loop_i);
    a.bge(Reg::S0, Reg::A3, done);
    a.li(Reg::S1, 0);
    a.bind(loop_j);
    {
        a.mul(Reg::T1, Reg::S0, Reg::A3);
        a.slli(Reg::T1, Reg::T1, 2);
        a.add(Reg::T1, Reg::T1, Reg::A0);
        a.mul(Reg::T2, Reg::S1, Reg::A3);
        a.slli(Reg::T2, Reg::T2, 2);
        a.add(Reg::T2, Reg::T2, Reg::A1);
        a.li(Reg::T4, 0);
        a.li(Reg::S2, 0);
        a.bind(loop_k);
        a.lw(Reg::T5, Reg::T1, 0);
        a.lw(Reg::T6, Reg::T2, 0);
        a.mulw(Reg::T5, Reg::T5, Reg::T6);
        a.addw(Reg::T4, Reg::T4, Reg::T5);
        a.addi(Reg::T1, Reg::T1, 4);
        a.addi(Reg::T2, Reg::T2, 4);
        a.addi(Reg::S2, Reg::S2, 1);
        a.blt(Reg::S2, Reg::A3, loop_k);
        a.mul(Reg::T0, Reg::S0, Reg::A3);
        a.add(Reg::T0, Reg::T0, Reg::S1);
        a.slli(Reg::T0, Reg::T0, 2);
        a.add(Reg::T0, Reg::T0, Reg::A2);
        a.sw(Reg::T4, Reg::T0, 0);
        a.addi(Reg::S1, Reg::S1, 1);
        a.blt(Reg::S1, Reg::A3, loop_j);
    }
    a.addi(Reg::S0, Reg::S0, 1);
    a.j(loop_i);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("matmul_i32 host kernel")
}

/// Single-precision `C = A × Bᵀ` (the host runs the FP32 version of the
/// FP16 workload — CVA6 has no half-precision SIMD). Output f32.
pub fn matmul_f32() -> Vec<u32> {
    let mut a = asm();
    let done = a.label();
    let loop_i = a.label();
    let loop_j = a.label();
    let loop_k = a.label();

    a.li(Reg::S0, 0);
    a.bind(loop_i);
    a.bge(Reg::S0, Reg::A3, done);
    a.li(Reg::S1, 0);
    a.bind(loop_j);
    {
        a.mul(Reg::T1, Reg::S0, Reg::A3);
        a.slli(Reg::T1, Reg::T1, 2);
        a.add(Reg::T1, Reg::T1, Reg::A0);
        a.mul(Reg::T2, Reg::S1, Reg::A3);
        a.slli(Reg::T2, Reg::T2, 2);
        a.add(Reg::T2, Reg::T2, Reg::A1);
        a.fmv_w_x(FReg(0), Reg::Zero);
        a.li(Reg::S2, 0);
        a.bind(loop_k);
        a.flw(FReg(1), Reg::T1, 0);
        a.flw(FReg(2), Reg::T2, 0);
        a.fmadd_s(FReg(0), FReg(1), FReg(2), FReg(0));
        a.addi(Reg::T1, Reg::T1, 4);
        a.addi(Reg::T2, Reg::T2, 4);
        a.addi(Reg::S2, Reg::S2, 1);
        a.blt(Reg::S2, Reg::A3, loop_k);
        a.mul(Reg::T0, Reg::S0, Reg::A3);
        a.add(Reg::T0, Reg::T0, Reg::S1);
        a.slli(Reg::T0, Reg::T0, 2);
        a.add(Reg::T0, Reg::T0, Reg::A2);
        a.fsw(FReg(0), Reg::T0, 0);
        a.addi(Reg::S1, Reg::S1, 1);
        a.blt(Reg::S1, Reg::A3, loop_j);
    }
    a.addi(Reg::S0, Reg::S0, 1);
    a.j(loop_i);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("matmul_f32 host kernel")
}

/// Scalar 3×3 int8 valid convolution (`a3 = h`, `a4 = w`).
pub fn conv2d_i8() -> Vec<u32> {
    let mut a = asm();
    let done = a.label();
    let loop_y = a.label();
    let loop_x = a.label();

    let wregs = [
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
        Reg::S8,
        Reg::S9,
        Reg::S10,
    ];
    for (i, &r) in wregs.iter().enumerate() {
        a.lb(r, Reg::A1, i as i64);
    }
    a.addi(Reg::S11, Reg::A3, -2);
    a.addi(Reg::A5, Reg::A4, -2);
    a.li(Reg::S0, 0);

    a.bind(loop_y);
    a.bge(Reg::S0, Reg::S11, done);
    a.li(Reg::S1, 0);
    a.bind(loop_x);
    {
        a.mul(Reg::T0, Reg::S0, Reg::A4);
        a.add(Reg::T0, Reg::T0, Reg::S1);
        a.add(Reg::T0, Reg::T0, Reg::A0);
        a.li(Reg::T4, 0);
        for row in 0..3 {
            for col in 0..3 {
                a.lb(Reg::T1, Reg::T0, col as i64);
                a.mulw(Reg::T1, Reg::T1, wregs[row * 3 + col]);
                a.addw(Reg::T4, Reg::T4, Reg::T1);
            }
            if row < 2 {
                a.add(Reg::T0, Reg::T0, Reg::A4);
            }
        }
        a.mul(Reg::T0, Reg::S0, Reg::A5);
        a.add(Reg::T0, Reg::T0, Reg::S1);
        a.slli(Reg::T0, Reg::T0, 2);
        a.add(Reg::T0, Reg::T0, Reg::A2);
        a.sw(Reg::T4, Reg::T0, 0);
        a.addi(Reg::S1, Reg::S1, 1);
        a.blt(Reg::S1, Reg::A5, loop_x);
    }
    a.addi(Reg::S0, Reg::S0, 1);
    a.j(loop_y);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("conv2d_i8 host kernel")
}

/// Scalar int16 FIR (`a3 = n` outputs, `a4 = taps`).
pub fn fir_i16() -> Vec<u32> {
    let mut a = asm();
    let done = a.label();
    let loop_i = a.label();
    let loop_t = a.label();

    a.li(Reg::S0, 0); // i
    a.bind(loop_i);
    a.bge(Reg::S0, Reg::A3, done);
    a.slli(Reg::T0, Reg::S0, 1);
    a.add(Reg::T0, Reg::T0, Reg::A0);
    a.mv(Reg::T1, Reg::A1);
    a.li(Reg::T4, 0);
    a.li(Reg::S2, 0); // t
    a.bind(loop_t);
    a.lh(Reg::T5, Reg::T0, 0);
    a.lh(Reg::T6, Reg::T1, 0);
    a.mulw(Reg::T5, Reg::T5, Reg::T6);
    a.addw(Reg::T4, Reg::T4, Reg::T5);
    a.addi(Reg::T0, Reg::T0, 2);
    a.addi(Reg::T1, Reg::T1, 2);
    a.addi(Reg::S2, Reg::S2, 1);
    a.blt(Reg::S2, Reg::A4, loop_t);
    a.slli(Reg::T2, Reg::S0, 2);
    a.add(Reg::T2, Reg::T2, Reg::A2);
    a.sw(Reg::T4, Reg::T2, 0);
    a.addi(Reg::S0, Reg::S0, 1);
    a.j(loop_i);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("fir_i16 host kernel")
}

/// Scalar 2×2 max pool (`a3 = h`, `a4 = w`, both even).
pub fn maxpool2x2_i8() -> Vec<u32> {
    let mut a = asm();
    let done = a.label();
    let loop_y = a.label();
    let loop_x = a.label();

    a.srli(Reg::S11, Reg::A3, 1); // oh
    a.srli(Reg::A5, Reg::A4, 1); // ow
    a.li(Reg::S0, 0); // oy
    a.bind(loop_y);
    a.bge(Reg::S0, Reg::S11, done);
    a.li(Reg::S1, 0); // ox
    a.bind(loop_x);
    {
        // base = in + 2*oy*w + 2*ox
        a.slli(Reg::T0, Reg::S0, 1);
        a.mul(Reg::T0, Reg::T0, Reg::A4);
        a.slli(Reg::T1, Reg::S1, 1);
        a.add(Reg::T0, Reg::T0, Reg::T1);
        a.add(Reg::T0, Reg::T0, Reg::A0);
        a.lb(Reg::T2, Reg::T0, 0);
        a.lb(Reg::T3, Reg::T0, 1);
        let skip1 = a.label();
        a.bge(Reg::T2, Reg::T3, skip1);
        a.mv(Reg::T2, Reg::T3);
        a.bind(skip1);
        a.add(Reg::T0, Reg::T0, Reg::A4);
        a.lb(Reg::T3, Reg::T0, 0);
        let skip2 = a.label();
        a.bge(Reg::T2, Reg::T3, skip2);
        a.mv(Reg::T2, Reg::T3);
        a.bind(skip2);
        a.lb(Reg::T3, Reg::T0, 1);
        let skip3 = a.label();
        a.bge(Reg::T2, Reg::T3, skip3);
        a.mv(Reg::T2, Reg::T3);
        a.bind(skip3);
        // out[oy*ow + ox]
        a.mul(Reg::T0, Reg::S0, Reg::A5);
        a.add(Reg::T0, Reg::T0, Reg::S1);
        a.add(Reg::T0, Reg::T0, Reg::A2);
        a.sb(Reg::T2, Reg::T0, 0);
        a.addi(Reg::S1, Reg::S1, 1);
        a.blt(Reg::S1, Reg::A5, loop_x);
    }
    a.addi(Reg::S0, Reg::S0, 1);
    a.j(loop_y);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("maxpool host kernel")
}

/// Scalar int8 ReLU over `a3` bytes.
pub fn relu_i8() -> Vec<u32> {
    let mut a = asm();
    let done = a.label();
    let top = a.label();
    let non_neg = a.label();

    a.li(Reg::S0, 0);
    a.bind(top);
    a.bge(Reg::S0, Reg::A3, done);
    a.add(Reg::T0, Reg::A0, Reg::S0);
    a.lb(Reg::T1, Reg::T0, 0);
    a.bge(Reg::T1, Reg::Zero, non_neg);
    a.li(Reg::T1, 0);
    a.bind(non_neg);
    a.add(Reg::T2, Reg::A2, Reg::S0);
    a.sb(Reg::T1, Reg::T2, 0);
    a.addi(Reg::S0, Reg::S0, 1);
    a.j(top);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("relu_i8 host kernel")
}

/// Scalar single-precision dot product; the f32 result is stored to
/// `out[0]`.
pub fn dotp_f32() -> Vec<u32> {
    let mut a = asm();
    let done = a.label();
    let top = a.label();

    a.li(Reg::S0, 0);
    a.mv(Reg::T1, Reg::A0);
    a.mv(Reg::T2, Reg::A1);
    a.fmv_w_x(FReg(0), Reg::Zero);
    a.bind(top);
    a.bge(Reg::S0, Reg::A3, done);
    a.flw(FReg(1), Reg::T1, 0);
    a.flw(FReg(2), Reg::T2, 0);
    a.fmadd_s(FReg(0), FReg(1), FReg(2), FReg(0));
    a.addi(Reg::T1, Reg::T1, 4);
    a.addi(Reg::T2, Reg::T2, 4);
    a.addi(Reg::S0, Reg::S0, 1);
    a.j(top);
    a.bind(done);
    a.fsw(FReg(0), Reg::A2, 0);
    a.ebreak();
    a.assemble().expect("dotp_f32 host kernel")
}

/// Scalar `y = α·x + y`; α bits in `a4`, `y` in-place at `a2`.
pub fn axpy_f32() -> Vec<u32> {
    let mut a = asm();
    let done = a.label();
    let top = a.label();

    a.li(Reg::S0, 0);
    a.mv(Reg::T1, Reg::A0);
    a.mv(Reg::T2, Reg::A2);
    a.fmv_w_x(FReg(3), Reg::A4);
    a.bind(top);
    a.bge(Reg::S0, Reg::A3, done);
    a.flw(FReg(1), Reg::T1, 0);
    a.flw(FReg(2), Reg::T2, 0);
    a.fmadd_s(FReg(2), FReg(3), FReg(1), FReg(2));
    a.fsw(FReg(2), Reg::T2, 0);
    a.addi(Reg::T1, Reg::T1, 4);
    a.addi(Reg::T2, Reg::T2, 4);
    a.addi(Reg::S0, Reg::S0, 1);
    a.j(top);
    a.bind(done);
    a.ebreak();
    a.assemble().expect("axpy_f32 host kernel")
}
