//! Executed DORY-style tiled layer inference.
//!
//! [`crate::dnn`] computes the Figure-9 traffic analytically; this module
//! actually *runs* a convolution layer the way DORY deploys one on
//! HULK-V: the feature map lives in main memory, the cluster DMA gathers
//! one tile at a time into the TCDM, the 8-core team computes it, and the
//! results stream back — with the double-buffering overlap of compute and
//! communication that the paper's `CCR` analysis assumes.

use crate::{cluster_gen, data, golden};
use hulkv::{HulkV, SocError};
use hulkv_cluster::TCDM_BASE;
use hulkv_rv::Reg;
use hulkv_sim::Cycles;

/// Result of one tiled-layer execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TiledConvRun {
    /// Number of tiles processed.
    pub tiles: usize,
    /// Sum of per-tile compute time (cluster cycles).
    pub compute_cycles: Cycles,
    /// Sum of per-tile DMA time (cluster cycles).
    pub dma_cycles: Cycles,
    /// Serial wall-clock: compute and DMA back to back.
    pub serial_cycles: Cycles,
    /// Double-buffered wall-clock: tile `t+1`'s DMA overlaps tile `t`'s
    /// compute, as in the paper's explicitly managed accelerators.
    pub overlapped_cycles: Cycles,
    /// Whether the assembled output matches the golden full-image
    /// convolution.
    pub verified: bool,
}

impl TiledConvRun {
    /// The measured computation-to-communication ratio of this layer.
    pub fn ccr(&self) -> f64 {
        self.compute_cycles.get() as f64 / self.dma_cycles.get().max(1) as f64
    }
}

/// Runs a 3×3 int8 valid convolution over an `h × w` feature map stored in
/// main memory, processing `tile_rows` output rows per TCDM tile on
/// `cores` cluster cores.
///
/// # Errors
///
/// Propagates SoC and execution errors; rejects geometries whose tile
/// (input slab + output slab) cannot fit the TCDM.
///
/// # Panics
///
/// Panics if `h`, `w` are smaller than 3 or `tile_rows` is zero.
pub fn run_tiled_conv(
    soc: &mut HulkV,
    h: usize,
    w: usize,
    tile_rows: usize,
    cores: usize,
) -> Result<TiledConvRun, SocError> {
    assert!(h >= 3 && w >= 3 && tile_rows > 0, "degenerate geometry");
    let (oh, ow) = (h - 2, w - 2);

    // Feature map and weights in the shared main-memory window.
    let image = data::i8_inputs(0xD0, h * w);
    let weights = data::i8_inputs(0xD1, 9);
    let img_addr = soc.hulk_malloc(h * w)?;
    let out_addr = soc.hulk_malloc(oh * ow * 4)?;
    soc.write_mem(img_addr, &data::i8_bytes(&image))?;

    // TCDM layout: input slab | weights | output slab.
    let slab_rows = tile_rows + 2;
    let in_off = 0u64;
    let w_off = (slab_rows * w) as u64;
    let out_off = (w_off + 9).div_ceil(16) * 16;
    let tile_out_bytes = tile_rows * ow * 4;
    if out_off as usize + tile_out_bytes + 8 * 1024 > soc.cluster().config().tcdm_bytes() {
        return Err(SocError::OutOfSharedMemory {
            requested: out_off as usize + tile_out_bytes,
        });
    }
    soc.cluster_mut()
        .tcdm_write(w_off, &data::i8_bytes(&weights))?;

    // One kernel binary reused for every full tile (lazy-loaded once).
    let kernel = soc.register_kernel(&cluster_gen::conv2d_i8())?;

    let mut compute = Cycles::ZERO;
    let mut dma = Cycles::ZERO;
    let mut per_tile_max = Vec::new();
    let mut assembled = vec![0u8; oh * ow * 4];
    let mut y = 0usize;
    let mut tiles = 0usize;

    while y < oh {
        let rows = tile_rows.min(oh - y);
        let slab = rows + 2;

        // DMA the input slab in.
        let mut tile_dma =
            soc.cluster_mut()
                .dma_to_tcdm(img_addr + (y * w) as u64, in_off, slab * w)?;

        // Compute the tile on the team.
        let r = soc.offload(
            kernel,
            &[
                (Reg::A0, TCDM_BASE + in_off),
                (Reg::A1, TCDM_BASE + w_off),
                (Reg::A2, TCDM_BASE + out_off),
                (Reg::A3, slab as u64),
                (Reg::A4, w as u64),
                (Reg::A7, cores as u64),
            ],
            cores,
            500_000_000,
        )?;

        // DMA the output tile back.
        tile_dma += soc.cluster_mut().dma_from_tcdm(
            out_off,
            out_addr + (y * ow * 4) as u64,
            rows * ow * 4,
        )?;

        let mut tile_out = vec![0u8; rows * ow * 4];
        soc.cluster_mut().tcdm_read(out_off, &mut tile_out)?;
        assembled[y * ow * 4..(y + rows) * ow * 4].copy_from_slice(&tile_out);

        compute += r.team.cycles;
        dma += tile_dma;
        per_tile_max.push(r.team.cycles.max(tile_dma));
        y += rows;
        tiles += 1;
    }

    // Double buffering: the first tile's inbound DMA cannot be hidden; all
    // other transfers overlap the previous tile's compute.
    let first_in = per_tile_max.first().copied().unwrap_or(Cycles::ZERO);
    let overlapped = dma.max(compute).max(first_in) + Cycles::new(64);

    let expect = golden::conv2d_i8(&image, &weights, h, w);
    let verified = data::i32_from_bytes(&assembled) == expect;

    Ok(TiledConvRun {
        tiles,
        compute_cycles: compute,
        dma_cycles: dma,
        serial_cycles: compute + dma,
        overlapped_cycles: overlapped,
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hulkv::SocConfig;

    #[test]
    fn tiled_output_matches_golden() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let r = run_tiled_conv(&mut soc, 18, 18, 4, 8).unwrap();
        assert!(r.verified, "tiled conv diverged from golden");
        assert_eq!(r.tiles, 4);
    }

    #[test]
    fn uneven_final_tile_handled() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        // oh = 13 with 4-row tiles: 4+4+4+1.
        let r = run_tiled_conv(&mut soc, 15, 12, 4, 8).unwrap();
        assert!(r.verified);
        assert_eq!(r.tiles, 4);
    }

    #[test]
    fn overlap_beats_serial() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let r = run_tiled_conv(&mut soc, 34, 34, 8, 8).unwrap();
        assert!(r.verified);
        assert!(r.overlapped_cycles < r.serial_cycles);
    }

    #[test]
    fn single_channel_conv_sits_at_the_ccr_boundary() {
        // A single-channel 3x3 layer has only 9x data reuse: it lands near
        // CCR = 1, exactly where Figure 9 places conv2d-int8 (0.98). The
        // channel-rich layers of real DNNs (cin x cout reuse) move right.
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let r = run_tiled_conv(&mut soc, 34, 34, 8, 8).unwrap();
        assert!(
            r.ccr() > 0.4 && r.ccr() < 2.5,
            "single-channel conv should straddle CCR=1, got {}",
            r.ccr()
        );
    }

    #[test]
    fn oversized_tile_rejected() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let err = run_tiled_conv(&mut soc, 600, 600, 64, 8);
        assert!(err.is_err());
    }
}
