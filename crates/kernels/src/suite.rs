//! The Figure-6 DSP kernel suite: generation, execution and verification.

use crate::{cluster_gen, data, golden, host_gen};
use hulkv::{map, HulkV, OffloadResult, SocError};
use hulkv_cluster::TCDM_BASE;
use hulkv_rv::fp16::f16_to_f32;
use hulkv_rv::Reg;
use hulkv_sim::Cycles;

/// The benchmark kernels of Figure 6: integer and floating-point DSP
/// workloads, each runnable on the scalar host and on the SIMD cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// int8 matrix multiplication (the paper's headline 157 GOps/W case).
    MatMulI8,
    /// int32 matrix multiplication.
    MatMulI32,
    /// FP16 matrix multiplication (f32 on the host, which lacks FP16).
    MatMulF16,
    /// 3×3 int8 convolution.
    Conv2dI8,
    /// int16 FIR filter.
    FirI16,
    /// int8 ReLU.
    ReluI8,
    /// 2×2 int8 max pooling (lane shuffle + extract showcase).
    MaxPoolI8,
    /// f32 dot product.
    DotpF32,
    /// f32 AXPY.
    AxpyF32,
}

impl Kernel {
    /// Every kernel, integer ones first (as in the paper's figure).
    pub const ALL: [Kernel; 9] = [
        Kernel::MatMulI8,
        Kernel::MatMulI32,
        Kernel::Conv2dI8,
        Kernel::FirI16,
        Kernel::ReluI8,
        Kernel::MaxPoolI8,
        Kernel::MatMulF16,
        Kernel::DotpF32,
        Kernel::AxpyF32,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::MatMulI8 => "matmul-int8",
            Kernel::MatMulI32 => "matmul-int32",
            Kernel::MatMulF16 => "matmul-fp16",
            Kernel::Conv2dI8 => "conv2d-int8",
            Kernel::FirI16 => "fir-int16",
            Kernel::ReluI8 => "relu-int8",
            Kernel::MaxPoolI8 => "maxpool-int8",
            Kernel::DotpF32 => "dotp-fp32",
            Kernel::AxpyF32 => "axpy-fp32",
        }
    }

    /// Whether this is one of the floating-point kernels (the harder
    /// targets for the PMCA, per the paper).
    pub fn is_float(self) -> bool {
        matches!(self, Kernel::MatMulF16 | Kernel::DotpF32 | Kernel::AxpyF32)
    }

    /// Main-memory bytes moved per invocation when the DMA streams the
    /// input tiles in and the results out (the communication side of the
    /// Figure-9 `CCR` analysis).
    pub fn tile_bytes(self, p: &KernelParams) -> u64 {
        let n = p.matmul_n as u64;
        match self {
            Kernel::MatMulI8 => 2 * n * n + 4 * n * n,
            Kernel::MatMulI32 => 8 * n * n + 4 * n * n,
            Kernel::MatMulF16 => {
                let n = p.f16_n as u64;
                2 * 2 * n * n + 4 * n * n
            }
            Kernel::Conv2dI8 => {
                (p.conv_h * p.conv_w) as u64 + 9 + 4 * ((p.conv_h - 2) * (p.conv_w - 2)) as u64
            }
            Kernel::FirI16 => 2 * (p.fir_n + p.fir_taps - 1) as u64 + 4 * p.fir_n as u64,
            Kernel::ReluI8 => 2 * p.relu_n as u64,
            Kernel::MaxPoolI8 => (p.pool_h * p.pool_w + p.pool_h * p.pool_w / 4) as u64,
            Kernel::DotpF32 => 8 * p.vec_n as u64,
            Kernel::AxpyF32 => 12 * p.vec_n as u64,
        }
    }

    /// Arithmetic operations per invocation (MAC = 2 ops), the GOps
    /// numerator.
    pub fn ops(self, p: &KernelParams) -> u64 {
        match self {
            Kernel::MatMulI8 | Kernel::MatMulI32 => 2 * (p.matmul_n as u64).pow(3),
            Kernel::MatMulF16 => 2 * (p.f16_n as u64).pow(3),
            Kernel::Conv2dI8 => 2 * 9 * ((p.conv_h - 2) * (p.conv_w - 2)) as u64,
            Kernel::FirI16 => 2 * (p.fir_taps as u64) * (p.fir_n as u64),
            Kernel::ReluI8 => p.relu_n as u64,
            // Three max operations per pooled output.
            Kernel::MaxPoolI8 => 3 * (p.pool_h as u64 / 2) * (p.pool_w as u64 / 2),
            Kernel::DotpF32 | Kernel::AxpyF32 => 2 * p.vec_n as u64,
        }
    }
}

/// Problem sizes for the suite (sized to fit the 128 kB TCDM alongside the
/// per-core stacks, as DORY-tiled inner kernels would be).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelParams {
    /// Matrix dimension of the integer matmuls.
    pub matmul_n: usize,
    /// Matrix dimension of the FP16 matmul.
    pub f16_n: usize,
    /// Convolution input height.
    pub conv_h: usize,
    /// Convolution input width.
    pub conv_w: usize,
    /// FIR output samples.
    pub fir_n: usize,
    /// FIR taps (multiple of 2).
    pub fir_taps: usize,
    /// ReLU elements (multiple of 32).
    pub relu_n: usize,
    /// Max-pool input height (even).
    pub pool_h: usize,
    /// Max-pool input width (multiple of 4).
    pub pool_w: usize,
    /// Vector length of dotp/axpy (multiple of 8).
    pub vec_n: usize,
}

impl KernelParams {
    /// The benchmark sizes used by the figure harnesses.
    pub fn small() -> Self {
        KernelParams {
            matmul_n: 64,
            f16_n: 64,
            conv_h: 34,
            conv_w: 34,
            fir_n: 1024,
            fir_taps: 16,
            relu_n: 8192,
            pool_h: 64,
            pool_w: 64,
            vec_n: 2048,
        }
    }

    /// Reduced sizes for fast unit tests.
    pub fn tiny() -> Self {
        KernelParams {
            matmul_n: 8,
            f16_n: 8,
            conv_h: 10,
            conv_w: 10,
            fir_n: 64,
            fir_taps: 8,
            relu_n: 256,
            pool_h: 8,
            pool_w: 8,
            vec_n: 128,
        }
    }
}

/// Outcome of a host-side kernel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostRun {
    /// CVA6 core cycles consumed.
    pub cycles: Cycles,
    /// Arithmetic operations performed.
    pub ops: u64,
    /// Whether the output matched the golden reference.
    pub verified: bool,
}

/// Outcome of a cluster-side kernel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterRun {
    /// The full offload record (overhead + team execution).
    pub offload: OffloadResult,
    /// Kernel-only cycles in the cluster domain.
    pub kernel_cycles: Cycles,
    /// Arithmetic operations performed (summed over the team).
    pub ops: u64,
    /// Whether the output matched the golden reference.
    pub verified: bool,
}

impl ClusterRun {
    /// Average SoC cycles per kernel execution when the target region runs
    /// the kernel `times` times under a single (lazily loaded) offload —
    /// the two Figure-6 operating points are `times = 1` and `times = 1000`.
    pub fn soc_cycles_amortized(&self, times: u64) -> f64 {
        assert!(times > 0, "at least one execution");
        let team_soc = (self.offload.total_soc_cycles - self.offload.overhead_cycles).get();
        (self.offload.overhead_cycles.get() as f64 + (times * team_soc) as f64) / times as f64
    }
}

/// Builds the cluster program for a kernel with an explicit size parameter
/// (matrix dimension, FIR taps…), bypassing [`KernelParams`]. Exposed for
/// the property-based tests that sweep problem sizes; not part of the
/// stable API surface.
///
/// # Panics
///
/// Panics for kernels whose generator needs more than one size parameter.
#[doc(hidden)]
pub fn cluster_program_for_tests(kernel: Kernel, size: usize) -> Vec<u32> {
    match kernel {
        Kernel::MatMulI8 => cluster_gen::matmul_i8(size),
        Kernel::MatMulI32 => cluster_gen::matmul_i32(size),
        Kernel::MatMulF16 => cluster_gen::matmul_f16(size),
        Kernel::FirI16 => cluster_gen::fir_i16(size),
        Kernel::Conv2dI8 => cluster_gen::conv2d_i8(),
        Kernel::ReluI8 => cluster_gen::relu_i8(),
        Kernel::MaxPoolI8 => cluster_gen::maxpool2x2_i8(),
        Kernel::DotpF32 | Kernel::AxpyF32 => {
            panic!("vector kernels need (n, cores); use run_on_cluster")
        }
    }
}

/// One generated guest program surfaced for static analysis: the name it
/// is reported under, the assembled words, and which core it targets
/// (`cluster` programs are RV32 Xpulp and execute from the L2SPM;
/// everything else is RV64 host code executing at `map::HOST_CODE`).
#[derive(Debug, Clone)]
pub struct LintProgram {
    /// Report / baseline key.
    pub name: String,
    /// Assembled instruction words.
    pub words: Vec<u32>,
    /// `true` for PMCA (RV32 Xpulp) programs.
    pub cluster: bool,
}

/// Every program the Figure-6 suite generates, in both flavours, at the
/// benchmark sizes — the input set for `hulkv-lint`.
pub fn lint_catalog() -> Vec<LintProgram> {
    let p = KernelParams::small();
    let cores = 8;
    Kernel::ALL
        .iter()
        .flat_map(|&k| {
            let host = k.host_setup(&p).0;
            let cluster = k.cluster_setup(&p, cores).0;
            [
                LintProgram {
                    name: format!("suite/{}/host", k.name()),
                    words: host,
                    cluster: false,
                },
                LintProgram {
                    name: format!("suite/{}/cluster", k.name()),
                    words: cluster,
                    cluster: true,
                },
            ]
        })
        .collect()
}

const HOST_RUN_BUDGET: u64 = 2_000_000_000;
const CLUSTER_RUN_BUDGET: u64 = 500_000_000;

/// Drives one Figure-6 kernel through the flight recorder: the host run
/// with its working set in the L2SPM (as [`Kernel::run_on_host`] stages
/// it), then two offloads — the first pays the lazy code load, the second
/// rides the cached L2SPM copy — with the working set in the TCDM (as
/// [`Kernel::run_on_cluster`] stages it). Every command lands in the
/// journal, so any checkpoint of the run replays deterministically.
///
/// # Errors
///
/// Propagates SoC and execution errors.
pub fn record_fig6_kernel(
    rec: &mut hulkv::Recorder,
    kernel: Kernel,
    p: &KernelParams,
    cores: usize,
) -> Result<(), SocError> {
    let base = host_data_base(rec.soc());
    let (program, a_bytes, b_bytes, out_init, n_arg, m_arg) = kernel.host_setup(p);
    let a_addr = base;
    let b_addr = a_addr + a_bytes.len() as u64;
    let c_addr = (b_addr + b_bytes.len() as u64 + 63) & !63;
    rec.write_mem(a_addr, &a_bytes)?;
    if !b_bytes.is_empty() {
        rec.write_mem(b_addr, &b_bytes)?;
    }
    rec.write_mem(c_addr, &out_init)?;
    rec.run_host_program(
        &program,
        &[
            (Reg::A0, a_addr),
            (Reg::A1, b_addr),
            (Reg::A2, c_addr),
            (Reg::A3, n_arg),
            (Reg::A4, m_arg),
        ],
        HOST_RUN_BUDGET,
    )?;

    let (cprogram, ca_bytes, cb_bytes, cout_init, cn_arg, cm_arg) = kernel.cluster_setup(p, cores);
    let a_off = 0u64;
    let b_off = a_off + ca_bytes.len() as u64;
    let c_off = (b_off + cb_bytes.len() as u64 + 63) & !63;
    rec.tcdm_write(a_off, &ca_bytes)?;
    if !cb_bytes.is_empty() {
        rec.tcdm_write(b_off, &cb_bytes)?;
    }
    rec.tcdm_write(c_off, &cout_init)?;
    let id = rec.register_kernel(&cprogram)?;
    let args = [
        (Reg::A0, TCDM_BASE + a_off),
        (Reg::A1, TCDM_BASE + b_off),
        (Reg::A2, TCDM_BASE + c_off),
        (Reg::A3, cn_arg),
        (Reg::A4, cm_arg),
        (Reg::A7, cores as u64),
    ];
    rec.offload(id, &args, cores, CLUSTER_RUN_BUDGET)?;
    rec.offload(id, &args, cores, CLUSTER_RUN_BUDGET)?;
    Ok(())
}

fn host_data_base(soc: &HulkV) -> u64 {
    map::L2SPM_BASE + soc.config().l2spm_bytes as u64 / 2
}

fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

impl Kernel {
    /// Runs the scalar kernel on CVA6 with its working set in the L2SPM
    /// (where a DORY-style tiler would have staged it) and verifies the
    /// result against the golden reference.
    ///
    /// # Errors
    ///
    /// Propagates SoC and execution errors.
    pub fn run_on_host(self, soc: &mut HulkV, p: &KernelParams) -> Result<HostRun, SocError> {
        let base = host_data_base(soc);
        let ops = self.ops(p);
        let (program, a_bytes, b_bytes, out_init, n_arg, m_arg) = self.host_setup(p);
        let out_len = out_init.len();
        let a_addr = base;
        let b_addr = a_addr + a_bytes.len() as u64;
        let c_addr = (b_addr + b_bytes.len() as u64 + 63) & !63;
        soc.write_mem(a_addr, &a_bytes)?;
        if !b_bytes.is_empty() {
            soc.write_mem(b_addr, &b_bytes)?;
        }
        soc.write_mem(c_addr, &out_init)?;

        let cycles = soc.run_host_program(
            &program,
            |core| {
                core.set_reg(Reg::A0, a_addr);
                core.set_reg(Reg::A1, b_addr);
                core.set_reg(Reg::A2, c_addr);
                core.set_reg(Reg::A3, n_arg);
                core.set_reg(Reg::A4, m_arg);
            },
            HOST_RUN_BUDGET,
        )?;

        let mut out = vec![0u8; out_len];
        soc.read_mem(c_addr, &mut out)?;
        let verified = self.verify(p, &out, false, 1);
        Ok(HostRun {
            cycles,
            ops,
            verified,
        })
    }

    /// Offloads the kernel to the PMCA with its working set in the TCDM
    /// and verifies the result.
    ///
    /// # Errors
    ///
    /// Propagates SoC and execution errors.
    pub fn run_on_cluster(
        self,
        soc: &mut HulkV,
        p: &KernelParams,
        cores: usize,
    ) -> Result<ClusterRun, SocError> {
        let ops = self.ops(p);
        let (program, a_bytes, b_bytes, out_init, n_arg, m_arg) = self.cluster_setup(p, cores);
        let out_len = out_init.len();
        let a_off = 0u64;
        let b_off = a_off + a_bytes.len() as u64;
        let c_off = (b_off + b_bytes.len() as u64 + 63) & !63;
        soc.cluster_mut().tcdm_write(a_off, &a_bytes)?;
        if !b_bytes.is_empty() {
            soc.cluster_mut().tcdm_write(b_off, &b_bytes)?;
        }
        soc.cluster_mut().tcdm_write(c_off, &out_init)?;

        let kernel = soc.register_kernel(&program)?;
        let args = [
            (Reg::A0, TCDM_BASE + a_off),
            (Reg::A1, TCDM_BASE + b_off),
            (Reg::A2, TCDM_BASE + c_off),
            (Reg::A3, n_arg),
            (Reg::A4, m_arg),
            (Reg::A7, cores as u64),
        ];
        let offload = soc.offload(kernel, &args, cores, CLUSTER_RUN_BUDGET)?;

        let mut out = vec![0u8; out_len];
        soc.cluster_mut().tcdm_read(c_off, &mut out)?;
        let verified = self.verify(p, &out, true, cores);
        Ok(ClusterRun {
            kernel_cycles: offload.team.cycles,
            ops,
            verified,
            offload,
        })
    }

    /// Program + input images + initial output image + size args for the
    /// host. The output image is usually zeros; AXPY seeds it with `y`
    /// because the kernel updates it in place.
    #[allow(clippy::type_complexity)]
    fn host_setup(self, p: &KernelParams) -> (Vec<u32>, Vec<u8>, Vec<u8>, Vec<u8>, u64, u64) {
        match self {
            Kernel::MatMulI8 => {
                let n = p.matmul_n;
                let a = data::i8_inputs(11, n * n);
                let b = data::i8_inputs(12, n * n);
                (
                    host_gen::matmul_i8(),
                    data::i8_bytes(&a),
                    data::i8_bytes(&b),
                    vec![0u8; n * n * 4],
                    n as u64,
                    0,
                )
            }
            Kernel::MatMulI32 => {
                let n = p.matmul_n;
                let a = data::i32_inputs(21, n * n);
                let b = data::i32_inputs(22, n * n);
                (
                    host_gen::matmul_i32(),
                    data::i32_bytes(&a),
                    data::i32_bytes(&b),
                    vec![0u8; n * n * 4],
                    n as u64,
                    0,
                )
            }
            Kernel::MatMulF16 => {
                // The host runs FP32 on the same values.
                let n = p.f16_n;
                let a: Vec<f32> = data::f16_inputs(31, n * n)
                    .iter()
                    .map(|&v| f16_to_f32(v))
                    .collect();
                let b: Vec<f32> = data::f16_inputs(32, n * n)
                    .iter()
                    .map(|&v| f16_to_f32(v))
                    .collect();
                (
                    host_gen::matmul_f32(),
                    data::f32_bytes(&a),
                    data::f32_bytes(&b),
                    vec![0u8; n * n * 4],
                    n as u64,
                    0,
                )
            }
            Kernel::Conv2dI8 => {
                let (h, w) = (p.conv_h, p.conv_w);
                let img = data::i8_inputs(41, h * w);
                let wts = data::i8_inputs(42, 9);
                (
                    host_gen::conv2d_i8(),
                    data::i8_bytes(&img),
                    data::i8_bytes(&wts),
                    vec![0u8; (h - 2) * (w - 2) * 4],
                    h as u64,
                    w as u64,
                )
            }
            Kernel::FirI16 => {
                let x = data::i16_inputs(51, p.fir_n + p.fir_taps - 1);
                let c = data::i16_inputs(52, p.fir_taps);
                (
                    host_gen::fir_i16(),
                    data::i16_bytes(&x),
                    data::i16_bytes(&c),
                    vec![0u8; p.fir_n * 4],
                    p.fir_n as u64,
                    p.fir_taps as u64,
                )
            }
            Kernel::ReluI8 => {
                let x = data::i8_inputs(61, p.relu_n);
                (
                    host_gen::relu_i8(),
                    data::i8_bytes(&x),
                    Vec::new(),
                    vec![0u8; p.relu_n],
                    p.relu_n as u64,
                    0,
                )
            }
            Kernel::MaxPoolI8 => {
                let (h, w) = (p.pool_h, p.pool_w);
                let x = data::i8_inputs(91, h * w);
                (
                    host_gen::maxpool2x2_i8(),
                    data::i8_bytes(&x),
                    Vec::new(),
                    vec![0u8; h * w / 4],
                    h as u64,
                    w as u64,
                )
            }
            Kernel::DotpF32 => {
                let a = data::f32_inputs(71, p.vec_n);
                let b = data::f32_inputs(72, p.vec_n);
                (
                    host_gen::dotp_f32(),
                    data::f32_bytes(&a),
                    data::f32_bytes(&b),
                    vec![0u8; 4],
                    p.vec_n as u64,
                    0,
                )
            }
            Kernel::AxpyF32 => {
                let x = data::f32_inputs(81, p.vec_n);
                let y = data::f32_inputs(82, p.vec_n);
                (
                    host_gen::axpy_f32(),
                    data::f32_bytes(&x),
                    Vec::new(),
                    data::f32_bytes(&y), // y is updated in place
                    p.vec_n as u64,
                    1.5f32.to_bits() as u64,
                )
            }
        }
    }

    /// Same, for the cluster.
    #[allow(clippy::type_complexity)]
    fn cluster_setup(
        self,
        p: &KernelParams,
        cores: usize,
    ) -> (Vec<u32>, Vec<u8>, Vec<u8>, Vec<u8>, u64, u64) {
        match self {
            Kernel::MatMulI8 => {
                let mut r = self.host_setup(p);
                r.0 = cluster_gen::matmul_i8(p.matmul_n);
                r
            }
            Kernel::MatMulI32 => {
                let mut r = self.host_setup(p);
                r.0 = cluster_gen::matmul_i32(p.matmul_n);
                r
            }
            Kernel::MatMulF16 => {
                let n = p.f16_n;
                let a = data::f16_inputs(31, n * n);
                let b = data::f16_inputs(32, n * n);
                (
                    cluster_gen::matmul_f16(n),
                    data::u16_bytes(&a),
                    data::u16_bytes(&b),
                    vec![0u8; n * n * 4], // f32 outputs
                    n as u64,
                    0,
                )
            }
            Kernel::Conv2dI8 => {
                let mut r = self.host_setup(p);
                r.0 = cluster_gen::conv2d_i8();
                r
            }
            Kernel::FirI16 => {
                let mut r = self.host_setup(p);
                r.0 = cluster_gen::fir_i16(p.fir_taps);
                r
            }
            Kernel::ReluI8 => {
                let mut r = self.host_setup(p);
                r.0 = cluster_gen::relu_i8();
                r
            }
            Kernel::MaxPoolI8 => {
                let mut r = self.host_setup(p);
                r.0 = cluster_gen::maxpool2x2_i8();
                r
            }
            Kernel::DotpF32 => {
                let mut r = self.host_setup(p);
                r.0 = cluster_gen::dotp_f32(p.vec_n, cores);
                r.3 = vec![0u8; cores * 4]; // one f32 partial per core
                r
            }
            Kernel::AxpyF32 => {
                let mut r = self.host_setup(p);
                r.0 = cluster_gen::axpy_f32(p.vec_n, cores);
                r
            }
        }
    }

    /// Verifies raw output bytes against the golden reference.
    fn verify(self, p: &KernelParams, out: &[u8], cluster: bool, cores: usize) -> bool {
        match self {
            Kernel::MatMulI8 => {
                let n = p.matmul_n;
                let a = data::i8_inputs(11, n * n);
                let b = data::i8_inputs(12, n * n);
                data::i32_from_bytes(out) == golden::matmul_i8(&a, &b, n)
            }
            Kernel::MatMulI32 => {
                let n = p.matmul_n;
                let a = data::i32_inputs(21, n * n);
                let b = data::i32_inputs(22, n * n);
                data::i32_from_bytes(out) == golden::matmul_i32(&a, &b, n)
            }
            Kernel::MatMulF16 => {
                let n = p.f16_n;
                let a = data::f16_inputs(31, n * n);
                let b = data::f16_inputs(32, n * n);
                let expect = golden::matmul_f16(&a, &b, n);
                let got = data::f32_from_bytes(out);
                // Host accumulates f32 sequentially, cluster pairs lanes:
                // both must land within half-precision resolution of the
                // f16-rounded golden product.
                got.iter()
                    .zip(&expect)
                    .all(|(&g, &e)| approx_eq(g, f16_to_f32(e), 0.02))
            }
            Kernel::Conv2dI8 => {
                let (h, w) = (p.conv_h, p.conv_w);
                let img = data::i8_inputs(41, h * w);
                let wts = data::i8_inputs(42, 9);
                data::i32_from_bytes(out) == golden::conv2d_i8(&img, &wts, h, w)
            }
            Kernel::FirI16 => {
                let x = data::i16_inputs(51, p.fir_n + p.fir_taps - 1);
                let c = data::i16_inputs(52, p.fir_taps);
                data::i32_from_bytes(out) == golden::fir_i16(&x, &c)[..p.fir_n]
            }
            Kernel::ReluI8 => {
                let x = data::i8_inputs(61, p.relu_n);
                data::i8_from_bytes(out) == golden::relu_i8(&x)
            }
            Kernel::MaxPoolI8 => {
                let (h, w) = (p.pool_h, p.pool_w);
                let x = data::i8_inputs(91, h * w);
                data::i8_from_bytes(out) == golden::maxpool2x2_i8(&x, h, w)
            }
            Kernel::DotpF32 => {
                let a = data::f32_inputs(71, p.vec_n);
                let b = data::f32_inputs(72, p.vec_n);
                let expect = golden::dotp_f32(&a, &b);
                let got = if cluster {
                    data::f32_from_bytes(&out[..cores * 4]).iter().sum::<f32>()
                } else {
                    data::f32_from_bytes(&out[..4])[0]
                };
                approx_eq(got, expect, 1e-4)
            }
            Kernel::AxpyF32 => {
                let x = data::f32_inputs(81, p.vec_n);
                let y = data::f32_inputs(82, p.vec_n);
                let expect = golden::axpy_f32(1.5, &x, &y);
                data::f32_from_bytes(out) == expect
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hulkv::SocConfig;

    #[test]
    fn every_kernel_verifies_on_host() {
        let p = KernelParams::tiny();
        for k in Kernel::ALL {
            let mut soc = HulkV::new(SocConfig::default()).unwrap();
            let run = k.run_on_host(&mut soc, &p).unwrap();
            assert!(run.verified, "{} host output mismatch", k.name());
            assert!(run.cycles.get() > 0);
            assert!(run.ops > 0);
        }
    }

    #[test]
    fn every_kernel_verifies_on_cluster() {
        let p = KernelParams::tiny();
        for k in Kernel::ALL {
            let mut soc = HulkV::new(SocConfig::default()).unwrap();
            let run = k.run_on_cluster(&mut soc, &p, 8).unwrap();
            assert!(run.verified, "{} cluster output mismatch", k.name());
            assert!(run.kernel_cycles.get() > 0);
        }
    }

    #[test]
    fn cluster_beats_host_on_int8_matmul() {
        let p = KernelParams::tiny();
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let host = Kernel::MatMulI8.run_on_host(&mut soc, &p).unwrap();
        let cluster = Kernel::MatMulI8.run_on_cluster(&mut soc, &p, 8).unwrap();
        // Kernel-only cycles: 8 cores x 4-wide SIMD vs 1 scalar core.
        assert!(
            cluster.kernel_cycles.get() * 4 < host.cycles.get(),
            "cluster {} vs host {}",
            cluster.kernel_cycles,
            host.cycles
        );
    }

    #[test]
    fn amortization_shrinks_per_run_cost() {
        let p = KernelParams::tiny();
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let run = Kernel::FirI16.run_on_cluster(&mut soc, &p, 8).unwrap();
        let once = run.soc_cycles_amortized(1);
        let thousand = run.soc_cycles_amortized(1000);
        assert!(once > thousand);
        // With 1000 reps the overhead share is negligible.
        let team = (run.offload.total_soc_cycles - run.offload.overhead_cycles).get() as f64;
        assert!((thousand - team) / team < 0.05);
    }

    #[test]
    fn ops_formulas() {
        let p = KernelParams::small();
        assert_eq!(Kernel::MatMulI8.ops(&p), 2 * 64u64.pow(3));
        assert_eq!(Kernel::Conv2dI8.ops(&p), 2 * 9 * 32 * 32);
        assert_eq!(Kernel::DotpF32.ops(&p), 2 * 2048);
        assert_eq!(Kernel::ALL.len(), 9);
        assert!(Kernel::MatMulF16.is_float());
        assert!(!Kernel::MatMulI8.is_float());
    }
}
