//! Deterministic benchmark input generation.

use hulkv_rv::fp16::f32_to_f16;
use hulkv_sim::SplitMix64;

/// Deterministic int8 inputs in `[-64, 63]` (headroom against int32
/// accumulator overflow in long reductions).
pub fn i8_inputs(seed: u64, len: usize) -> Vec<i8> {
    let mut r = SplitMix64::new(seed);
    (0..len).map(|_| (r.next_below(128) as i8) - 64).collect()
}

/// Deterministic int16 inputs in `[-256, 255]`.
pub fn i16_inputs(seed: u64, len: usize) -> Vec<i16> {
    let mut r = SplitMix64::new(seed);
    (0..len).map(|_| (r.next_below(512) as i16) - 256).collect()
}

/// Deterministic int32 inputs in `[-2^15, 2^15)`.
pub fn i32_inputs(seed: u64, len: usize) -> Vec<i32> {
    let mut r = SplitMix64::new(seed);
    (0..len)
        .map(|_| (r.next_below(1 << 16) as i32) - (1 << 15))
        .collect()
}

/// Deterministic f32 inputs in `[-1, 1)`.
pub fn f32_inputs(seed: u64, len: usize) -> Vec<f32> {
    let mut r = SplitMix64::new(seed);
    (0..len)
        .map(|_| (r.next_f64() * 2.0 - 1.0) as f32)
        .collect()
}

/// Deterministic FP16 inputs in `[-1, 1)`, as raw bit patterns.
pub fn f16_inputs(seed: u64, len: usize) -> Vec<u16> {
    f32_inputs(seed, len).into_iter().map(f32_to_f16).collect()
}

/// Little-endian byte image of an `i8` slice.
pub fn i8_bytes(v: &[i8]) -> Vec<u8> {
    v.iter().map(|&x| x as u8).collect()
}

/// Little-endian byte image of an `i16` slice.
pub fn i16_bytes(v: &[i16]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Little-endian byte image of an `i32` slice.
pub fn i32_bytes(v: &[i32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Little-endian byte image of an `f32` slice.
pub fn f32_bytes(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Little-endian byte image of a `u16` slice.
pub fn u16_bytes(v: &[u16]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Parses little-endian `i32`s out of raw bytes.
pub fn i32_from_bytes(b: &[u8]) -> Vec<i32> {
    b.chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

/// Parses little-endian `f32`s out of raw bytes.
pub fn f32_from_bytes(b: &[u8]) -> Vec<f32> {
    b.chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

/// Parses little-endian `u16`s out of raw bytes.
pub fn u16_from_bytes(b: &[u8]) -> Vec<u16> {
    b.chunks_exact(2)
        .map(|c| u16::from_le_bytes(c.try_into().expect("2-byte chunk")))
        .collect()
}

/// Parses `i8`s out of raw bytes.
pub fn i8_from_bytes(b: &[u8]) -> Vec<i8> {
    b.iter().map(|&x| x as i8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(i8_inputs(1, 100), i8_inputs(1, 100));
        assert_ne!(i8_inputs(1, 100), i8_inputs(2, 100));
        assert_eq!(f32_inputs(9, 10), f32_inputs(9, 10));
    }

    #[test]
    fn ranges_respected() {
        assert!(i8_inputs(3, 1000).iter().all(|&v| (-64..64).contains(&v)));
        assert!(i16_inputs(3, 1000)
            .iter()
            .all(|&v| (-256..256).contains(&v)));
        assert!(f32_inputs(3, 1000)
            .iter()
            .all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn byte_round_trips() {
        let v = i32_inputs(7, 64);
        assert_eq!(i32_from_bytes(&i32_bytes(&v)), v);
        let f = f32_inputs(7, 64);
        assert_eq!(f32_from_bytes(&f32_bytes(&f)), f);
        let h = f16_inputs(7, 64);
        assert_eq!(u16_from_bytes(&u16_bytes(&h)), h);
        let b = i8_inputs(7, 64);
        assert_eq!(i8_from_bytes(&i8_bytes(&b)), b);
    }
}
