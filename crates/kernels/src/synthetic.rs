//! The Figure-7 synthetic cache-stress benchmark.
//!
//! The paper's benchmark reads a 4 kB L1 way, then performs rounds of 4 kB
//! reads with stride `S`; the L1 miss ratio grows with `S` and, past a
//! point, the miss traffic outruns the LLC too. This module reproduces the
//! mechanism with the miss knob made explicit: each round issues 64
//! line-sized reads, `miss_per_round = m` of which walk cyclically over a
//! thrash footprint of `m × 4 kB` while the rest hit a resident 4 kB block.
//!
//! * `m ≤ 8` — the footprint fits the 32 kB L1: everything hits.
//! * `8 < m ≤ 32` — the footprint exceeds the L1 but fits the 128 kB LLC:
//!   the L1 miss ratio is ≈ `m/64` and the LLC absorbs it.
//! * `m > 32` — the footprint exceeds the LLC: misses reach main memory,
//!   and the HyperRAM configurations fall behind DDR4 — exactly the
//!   paper's observation that DDR4 only pays off beyond ≈50 % L1 miss
//!   ratio.
//!
//! As in the paper, the pattern "draws a lower performance bound: the
//! resulting data pattern is highly unlikely to happen in real-world
//! applications".

use hulkv::{map, HulkV, MemorySetup, SocConfig, SocError};
use hulkv_rv::{Asm, Reg, Xlen};

/// Reads per round (one per line of a 4 kB L1 way).
pub const READS_PER_ROUND: usize = 64;

/// Thrash footprint contributed by each missing read: 4 kB, so the sweep
/// crosses the L1 capacity at `m = 8` and the LLC capacity at `m = 32`.
pub const FOOTPRINT_PER_MISS: usize = 4096;

/// One measured point of the Figure-7 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Memory configuration measured.
    pub setup: MemorySetup,
    /// Fraction of reads aimed at the thrash footprint.
    pub miss_fraction: f64,
    /// Host-core cycles per read.
    pub cycles_per_read: f64,
    /// Observed L1D miss ratio (the paper's x-axis).
    pub l1d_miss_ratio: f64,
}

/// Generates the sweep program: `rounds` rounds of [`READS_PER_ROUND`]
/// loads, `miss_per_round` of which walk the thrash footprint cyclically.
///
/// Register convention: `a0` = resident 4 kB block, `a1` = thrash region
/// base. The thrash cursor lives in `s5` and persists across rounds.
///
/// # Panics
///
/// Panics if `miss_per_round > READS_PER_ROUND`.
pub fn sweep_program(miss_per_round: usize, rounds: usize) -> Vec<u32> {
    assert!(miss_per_round <= READS_PER_ROUND);
    let hits = READS_PER_ROUND - miss_per_round;
    let footprint = (miss_per_round * FOOTPRINT_PER_MISS) as i64;
    let mut a = Asm::new(Xlen::Rv64);

    a.li(Reg::S0, rounds as i64);
    a.li(Reg::S5, 0); // thrash cursor
    a.li(Reg::S6, footprint.max(1));
    let round = a.label();
    a.bind(round);
    if hits > 0 {
        a.mv(Reg::T0, Reg::A0);
        a.li(Reg::T1, hits as i64);
        let l = a.label();
        a.bind(l);
        a.ld(Reg::T2, Reg::T0, 0);
        a.addi(Reg::T0, Reg::T0, 64);
        a.addi(Reg::T1, Reg::T1, -1);
        a.bnez(Reg::T1, l);
    }
    if miss_per_round > 0 {
        a.li(Reg::T1, miss_per_round as i64);
        let l = a.label();
        a.bind(l);
        a.add(Reg::T0, Reg::A1, Reg::S5);
        a.ld(Reg::T2, Reg::T0, 0);
        a.addi(Reg::S5, Reg::S5, 64);
        let no_wrap = a.label();
        a.blt(Reg::S5, Reg::S6, no_wrap);
        a.li(Reg::S5, 0);
        a.bind(no_wrap);
        a.addi(Reg::T1, Reg::T1, -1);
        a.bnez(Reg::T1, l);
    }
    a.addi(Reg::S0, Reg::S0, -1);
    a.bnez(Reg::S0, round);
    a.ebreak();
    a.assemble().expect("sweep program")
}

/// Runs one sweep point on a fresh SoC with the given memory setup:
/// one warm-up pass over the whole footprint, then `rounds` measured
/// rounds.
///
/// # Errors
///
/// Propagates SoC construction and execution errors.
pub fn run_sweep_point(
    setup: MemorySetup,
    miss_per_round: usize,
    rounds: usize,
) -> Result<SweepPoint, SocError> {
    let mut p =
        run_sweep_point_with_config(SocConfig::with_memory_setup(setup), miss_per_round, rounds)?;
    p.setup = setup;
    Ok(p)
}

/// Like [`run_sweep_point`] but with a caller-supplied SoC configuration
/// (used by the LLC-geometry ablations). The returned point is labeled
/// with the flagship setup.
///
/// # Errors
///
/// Propagates SoC construction and execution errors.
pub fn run_sweep_point_with_config(
    cfg: SocConfig,
    miss_per_round: usize,
    rounds: usize,
) -> Result<SweepPoint, SocError> {
    let mut soc = HulkV::new(cfg)?;
    let resident = map::DRAM_BASE + 0x0300_0000;
    let thrash = map::DRAM_BASE + 0x0400_0000;
    let set_args = |core: &mut hulkv_rv::Core| {
        core.set_reg(Reg::A0, resident);
        core.set_reg(Reg::A1, thrash);
    };

    // Warm-up: one full pass over the footprint (the paper's "second
    // iteration warms up the caches").
    let warm_rounds = FOOTPRINT_PER_MISS / 64;
    soc.run_host_program(
        &sweep_program(miss_per_round, warm_rounds),
        set_args,
        1_000_000_000,
    )?;

    soc.host_mut().core_mut().reset_counters();
    let l1_hits0 = soc.host().l1d_stats().get("hits");
    let l1_miss0 = soc.host().l1d_stats().get("misses");
    let cycles = soc.run_host_program(
        &sweep_program(miss_per_round, rounds),
        set_args,
        10_000_000_000,
    )?;

    let hits = (soc.host().l1d_stats().get("hits") - l1_hits0) as f64;
    let misses = (soc.host().l1d_stats().get("misses") - l1_miss0) as f64;
    let reads = (rounds * READS_PER_ROUND) as f64;
    Ok(SweepPoint {
        setup: MemorySetup::HyperWithLlc,
        miss_fraction: miss_per_round as f64 / READS_PER_ROUND as f64,
        cycles_per_read: cycles.get() as f64 / reads,
        l1d_miss_ratio: if hits + misses > 0.0 {
            misses / (hits + misses)
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_miss_point_is_fast_everywhere() {
        for setup in MemorySetup::ALL {
            let p = run_sweep_point(setup, 0, 20).unwrap();
            assert!(
                p.cycles_per_read < 8.0,
                "{}: {} cycles/read",
                setup.name(),
                p.cycles_per_read
            );
        }
    }

    #[test]
    fn miss_ratio_tracks_knob() {
        let low = run_sweep_point(MemorySetup::HyperWithLlc, 16, 64).unwrap();
        let high = run_sweep_point(MemorySetup::HyperWithLlc, 56, 64).unwrap();
        assert!(high.l1d_miss_ratio > low.l1d_miss_ratio + 0.2);
        assert!(high.cycles_per_read > low.cycles_per_read);
    }

    #[test]
    fn llc_absorbs_moderate_miss_ratios() {
        // Footprint 96 kB: misses fit the LLC, so the LLC config stays
        // far ahead of the raw-HyperRAM config.
        let with = run_sweep_point(MemorySetup::HyperWithLlc, 24, 64).unwrap();
        let without = run_sweep_point(MemorySetup::HyperOnly, 24, 64).unwrap();
        assert!(
            without.cycles_per_read > 2.0 * with.cycles_per_read,
            "with {} vs without {}",
            with.cycles_per_read,
            without.cycles_per_read
        );
    }

    #[test]
    fn hyper_matches_ddr_below_half_missing_and_diverges_above() {
        // The paper's crossover: below ~50 % L1 miss ratio HyperRAM+LLC
        // performs like DDR4+LLC...
        let hyper = run_sweep_point(MemorySetup::HyperWithLlc, 24, 64).unwrap();
        let ddr = run_sweep_point(MemorySetup::DdrWithLlc, 24, 64).unwrap();
        assert!(hyper.l1d_miss_ratio < 0.5);
        let ratio = hyper.cycles_per_read / ddr.cycles_per_read;
        assert!(ratio < 1.3, "hyper/ddr = {ratio}");
        // ...and diverges when the miss traffic outruns the LLC.
        let hyper = run_sweep_point(MemorySetup::HyperWithLlc, 64, 64).unwrap();
        let ddr = run_sweep_point(MemorySetup::DdrWithLlc, 64, 64).unwrap();
        assert!(hyper.l1d_miss_ratio > 0.5);
        assert!(hyper.cycles_per_read / ddr.cycles_per_read > 2.0);
    }
}
