//! DSP/ML workloads, IoT benchmarks and DNN models for the HULK-V
//! reproduction.
//!
//! Every benchmark of the paper's evaluation lives here:
//!
//! * [`suite`] — the Figure-6 DSP kernel suite (integer and floating-point,
//!   each with a golden Rust reference, a scalar RV64 program for CVA6 and
//!   a parallel Xpulp program for the PMCA);
//! * [`synthetic`] — the Figure-7 strided-read benchmark that stresses the
//!   cache hierarchy with a controllable miss ratio;
//! * [`iot`] — the five CPU-centric IoT benchmarks of Figure 8;
//! * [`dnn`] — the two end-to-end DNNs of Figure 9 (a MobileNet-class
//!   classifier and a DroNet-style navigation network) with a DORY-style
//!   tiler that derives their main-memory traffic and `CCR`;
//! * [`dnn_exec`] — an *executed* DORY-style tiled convolution layer with
//!   double-buffered DMA, verified against the golden reference;
//! * [`golden`] — the scalar Rust reference implementations everything is
//!   verified against;
//! * [`data`] — deterministic input generation.
//!
//! # Example
//!
//! ```
//! use hulkv::{HulkV, SocConfig};
//! use hulkv_kernels::suite::{Kernel, KernelParams};
//!
//! let mut soc = HulkV::new(SocConfig::default())?;
//! let params = KernelParams::small();
//! let host = Kernel::MatMulI8.run_on_host(&mut soc, &params)?;
//! let cluster = Kernel::MatMulI8.run_on_cluster(&mut soc, &params, 8)?;
//! assert!(host.verified && cluster.verified);
//! // The 8-core SIMD cluster crushes the scalar host on int8 matmul.
//! assert!(cluster.kernel_cycles < host.cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod dnn;
pub mod dnn_exec;
pub mod golden;
pub mod hpm;
pub mod iot;
pub mod suite;
pub mod synthetic;

mod cluster_gen;
mod host_gen;
