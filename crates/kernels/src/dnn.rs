//! End-to-end DNN workload models for the Figure-9 analysis.
//!
//! The paper evaluates two DORY-deployed networks: an image-classification
//! DNN \[20\] and the DroNet-style visual-navigation network for nano-drones
//! \[22\]. Reproducing DORY's code generator is out of scope; what Figure 9
//! consumes from it is each network's **operation count** and **main-memory
//! traffic under L2/L1 tiling**, which this module computes from the layer
//! graphs: weights stream from DRAM once per inference, activations
//! ping-pong in the L2SPM and spill only when a layer's working set
//! exceeds it.

use hulkv_power::{CcrPoint, ComputeBlock};

/// One convolutional (or pointwise/depthwise) layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvLayer {
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Square kernel size.
    pub k: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Stride.
    pub stride: usize,
    /// Depthwise convolution (one filter per channel).
    pub depthwise: bool,
}

impl ConvLayer {
    /// Output spatial dimensions.
    pub fn out_hw(&self) -> (usize, usize) {
        (self.h / self.stride, self.w / self.stride)
    }

    /// Multiply-accumulate count.
    pub fn macs(&self) -> u64 {
        let (oh, ow) = self.out_hw();
        let per_pixel = if self.depthwise {
            self.k * self.k * self.cout
        } else {
            self.k * self.k * self.cin * self.cout
        };
        (oh * ow * per_pixel) as u64
    }

    /// Weight bytes (int8 quantized, as DORY deploys).
    pub fn weight_bytes(&self) -> u64 {
        let w = if self.depthwise {
            self.k * self.k * self.cout
        } else {
            self.k * self.k * self.cin * self.cout
        };
        w as u64
    }

    /// Input activation bytes (int8).
    pub fn input_bytes(&self) -> u64 {
        (self.cin * self.h * self.w) as u64
    }

    /// Output activation bytes (int8).
    pub fn output_bytes(&self) -> u64 {
        let (oh, ow) = self.out_hw();
        (self.cout * oh * ow) as u64
    }
}

/// A whole network: an ordered layer list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnnModel {
    /// Network name.
    pub name: &'static str,
    /// The layers, first to last.
    pub layers: Vec<ConvLayer>,
}

impl DnnModel {
    /// A MobileNetV1-class int8 classifier on 128×128 input — the
    /// image-classification DNN of citation \[20\].
    pub fn classifier() -> Self {
        let mut layers = vec![ConvLayer {
            cin: 3,
            cout: 32,
            k: 3,
            h: 128,
            w: 128,
            stride: 2,
            depthwise: false,
        }];
        // MobileNet body: alternating depthwise / pointwise stages.
        let stages: [(usize, usize, usize); 6] = [
            (32, 64, 1),
            (64, 128, 2),
            (128, 128, 1),
            (128, 256, 2),
            (256, 256, 1),
            (256, 512, 2),
        ];
        let mut hw = 64;
        for (cin, cout, stride) in stages {
            layers.push(ConvLayer {
                cin,
                cout: cin,
                k: 3,
                h: hw,
                w: hw,
                stride,
                depthwise: true,
            });
            hw /= stride;
            layers.push(ConvLayer {
                cin,
                cout,
                k: 1,
                h: hw,
                w: hw,
                stride: 1,
                depthwise: false,
            });
        }
        DnnModel {
            name: "classifier-dnn",
            layers,
        }
    }

    /// A DroNet-style navigation network on 200×200 grayscale input — the
    /// autonomous nano-drone workload of citation \[22\].
    pub fn dronet() -> Self {
        let layers = vec![
            ConvLayer {
                cin: 1,
                cout: 32,
                k: 5,
                h: 200,
                w: 200,
                stride: 2,
                depthwise: false,
            },
            ConvLayer {
                cin: 32,
                cout: 32,
                k: 3,
                h: 50,
                w: 50,
                stride: 2,
                depthwise: false,
            },
            ConvLayer {
                cin: 32,
                cout: 32,
                k: 3,
                h: 25,
                w: 25,
                stride: 1,
                depthwise: false,
            },
            ConvLayer {
                cin: 32,
                cout: 64,
                k: 3,
                h: 25,
                w: 25,
                stride: 2,
                depthwise: false,
            },
            ConvLayer {
                cin: 64,
                cout: 64,
                k: 3,
                h: 13,
                w: 13,
                stride: 1,
                depthwise: false,
            },
            ConvLayer {
                cin: 64,
                cout: 128,
                k: 3,
                h: 13,
                w: 13,
                stride: 2,
                depthwise: false,
            },
            ConvLayer {
                cin: 128,
                cout: 128,
                k: 3,
                h: 7,
                w: 7,
                stride: 1,
                depthwise: false,
            },
        ];
        DnnModel {
            name: "dronet",
            layers,
        }
    }

    /// Total multiply-accumulates per inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(ConvLayer::macs).sum()
    }

    /// Total arithmetic operations (MAC = 2 ops).
    pub fn total_ops(&self) -> u64 {
        2 * self.total_macs()
    }

    /// Main-memory bytes per inference under DORY-style tiling with an L2
    /// scratchpad of `l2_bytes`: the input image and every weight stream in
    /// from DRAM; activations stay in the L2 ping-pong buffers and spill
    /// out and back only when a layer's in+out footprint exceeds the L2.
    pub fn dram_bytes(&self, l2_bytes: u64) -> u64 {
        let mut bytes = self.layers.first().map_or(0, |l| l.input_bytes());
        for l in &self.layers {
            bytes += l.weight_bytes();
            let footprint = l.input_bytes() + l.output_bytes();
            if footprint > l2_bytes {
                // Spill: the overflow goes to DRAM and is read back.
                bytes += 2 * (footprint - l2_bytes);
            }
        }
        bytes
    }

    /// Builds the Figure-9 point for this network running on the PMCA.
    ///
    /// `macs_per_cycle` is the cluster's measured int8 matmul throughput
    /// (from the Figure-6 simulation) and `freq_hz` its clock.
    pub fn ccr_point(&self, macs_per_cycle: f64, freq_hz: f64, l2_bytes: u64) -> CcrPoint {
        let compute_seconds = self.total_macs() as f64 / macs_per_cycle / freq_hz;
        CcrPoint::new(
            self.name,
            ComputeBlock::Pmca,
            self.total_ops() as f64,
            compute_seconds,
            self.dram_bytes(l2_bytes) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hulkv_power::MemoryKind;

    #[test]
    fn layer_arithmetic() {
        let l = ConvLayer {
            cin: 16,
            cout: 32,
            k: 3,
            h: 8,
            w: 8,
            stride: 1,
            depthwise: false,
        };
        assert_eq!(l.macs(), (8 * 8 * 9 * 16 * 32) as u64);
        assert_eq!(l.weight_bytes(), 9 * 16 * 32);
        assert_eq!(l.input_bytes(), 16 * 64);
        assert_eq!(l.output_bytes(), 32 * 64);
        let dw = ConvLayer {
            depthwise: true,
            ..l
        };
        assert_eq!(dw.macs(), (8 * 8 * 9 * 32) as u64);
    }

    #[test]
    fn models_have_realistic_scale() {
        let c = DnnModel::classifier();
        // MobileNet-class: tens of millions of MACs.
        assert!(c.total_macs() > 10_000_000, "{}", c.total_macs());
        let d = DnnModel::dronet();
        // DroNet on GAP8 is ~40 MMAC.
        assert!(d.total_macs() > 5_000_000 && d.total_macs() < 200_000_000);
    }

    #[test]
    fn dram_traffic_includes_all_weights() {
        let d = DnnModel::dronet();
        let weights: u64 = d.layers.iter().map(ConvLayer::weight_bytes).sum();
        assert!(d.dram_bytes(512 * 1024) >= weights);
        // A smaller L2 spills more.
        assert!(d.dram_bytes(32 * 1024) > d.dram_bytes(512 * 1024));
    }

    #[test]
    fn dnns_are_compute_bound_with_high_reuse() {
        // The paper: "Most of the IoT target applications, especially on
        // the cluster, are compute-bound, thanks to the careful, deeply
        // optimized data movements."
        for model in [DnnModel::classifier(), DnnModel::dronet()] {
            let p = model.ccr_point(10.0, 400.0e6, 512 * 1024);
            assert!(
                p.ccr(MemoryKind::Hyper) > 1.0,
                "{} memory-bound",
                model.name
            );
            // And therefore roughly double efficiency on HyperRAM.
            assert!(p.relative_efficiency() > 1.5, "{}", model.name);
        }
    }
}
