//! Machine-readable metrics export.
//!
//! A [`MetricsSnapshot`] collects every modeled block's [`Stats`] plus the
//! power model's per-block milliwatt figures into one JSON document, so
//! bench runs can be archived and diffed across PRs. The document carries
//! a schema-version field; [`MetricsSnapshot::parse`] rejects documents
//! from a different schema so format drift is detected instead of being
//! silently misread.

use crate::json::Json;
use crate::stats::Stats;
use std::collections::BTreeMap;

/// Version of the metrics JSON schema produced by [`MetricsSnapshot::to_json`].
///
/// v2 added the `energy` section (integrated energy totals and
/// peak-window figures from the timeline sampler).
pub const METRICS_SCHEMA_VERSION: u32 = 2;

/// Everything a run reports: per-block counters, per-block power,
/// time-integrated energy figures, and free-form scalar figures
/// (wall-clock, speedups…).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Per-block counter registries (block name → counters).
    pub blocks: Vec<Stats>,
    /// Per-block power in milliwatts.
    pub power_mw: BTreeMap<String, f64>,
    /// Energy figures integrated over the run's timeline: `total_mj`,
    /// `avg_power_mw`, `peak_power_mw`, `peak_window_start_cycle`,
    /// `duration_cycles` (empty when no timeline was sampled).
    pub energy: BTreeMap<String, f64>,
    /// Named scalar figures of merit.
    pub figures: BTreeMap<String, f64>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one block's counters.
    pub fn push_block(&mut self, stats: Stats) {
        self.blocks.push(stats);
    }

    /// Records one block's power draw in milliwatts.
    pub fn set_power_mw(&mut self, block: impl Into<String>, mw: f64) {
        self.power_mw.insert(block.into(), mw);
    }

    /// Records a named scalar figure (e.g. `"speedup_x1000"`).
    pub fn set_figure(&mut self, name: impl Into<String>, value: f64) {
        self.figures.insert(name.into(), value);
    }

    /// Records one energy figure (e.g. `"total_mj"`).
    pub fn set_energy(&mut self, name: impl Into<String>, value: f64) {
        self.energy.insert(name.into(), value);
    }

    /// Total power across all blocks, in milliwatts.
    pub fn total_power_mw(&self) -> f64 {
        self.power_mw.values().sum()
    }

    /// Serializes the snapshot to its JSON document.
    pub fn to_json(&self) -> Json {
        let blocks: Vec<Json> = self
            .blocks
            .iter()
            .map(|s| {
                Json::obj([
                    ("name", Json::from(s.name())),
                    (
                        "counters",
                        Json::Obj(
                            s.iter()
                                .map(|(k, v)| (k.to_owned(), Json::from(v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("schema_version", Json::from(METRICS_SCHEMA_VERSION)),
            ("blocks", Json::Arr(blocks)),
            (
                "power_mw",
                Json::Obj(
                    self.power_mw
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            ("total_power_mw", Json::from(self.total_power_mw())),
            (
                "energy",
                Json::Obj(
                    self.energy
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "figures",
                Json::Obj(
                    self.figures
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a snapshot back from its JSON text.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, a missing/mismatched `schema_version`
    /// (format drift), or structurally invalid blocks.
    pub fn parse(text: &str) -> Result<MetricsSnapshot, String> {
        let doc = Json::parse(text)?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing schema_version")? as u32;
        if version == 1 {
            return Err(
                "schema_version 1 documents are no longer supported: v2 added the \
                 `energy` section — regenerate the snapshot with a current bench run"
                    .into(),
            );
        }
        if version != METRICS_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} != supported {METRICS_SCHEMA_VERSION}"
            ));
        }
        let mut snap = MetricsSnapshot::new();
        for b in doc
            .get("blocks")
            .and_then(Json::as_arr)
            .ok_or("missing blocks")?
        {
            let name = b
                .get("name")
                .and_then(Json::as_str)
                .ok_or("block without name")?;
            let mut stats = Stats::new(name);
            match b.get("counters") {
                Some(Json::Obj(m)) => {
                    for (k, v) in m {
                        stats.set(k, v.as_f64().ok_or("non-numeric counter")? as u64);
                    }
                }
                _ => return Err("block without counters".into()),
            }
            snap.push_block(stats);
        }
        if let Some(Json::Obj(m)) = doc.get("power_mw") {
            for (k, v) in m {
                snap.set_power_mw(k.clone(), v.as_f64().ok_or("non-numeric power")?);
            }
        }
        if let Some(Json::Obj(m)) = doc.get("energy") {
            for (k, v) in m {
                snap.set_energy(k.clone(), v.as_f64().ok_or("non-numeric energy")?);
            }
        }
        if let Some(Json::Obj(m)) = doc.get("figures") {
            for (k, v) in m {
                snap.set_figure(k.clone(), v.as_f64().ok_or("non-numeric figure")?);
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let mut llc = Stats::new("llc");
        llc.add("hits", 120);
        llc.add("misses", 30);
        snap.push_block(llc);
        let mut core = Stats::new("cva6");
        core.add("instret", 5000);
        snap.push_block(core);
        snap.set_power_mw("cva6", 45.5);
        snap.set_power_mw("pmca", 88.0);
        snap.set_energy("total_mj", 1.25);
        snap.set_energy("peak_power_mw", 140.5);
        snap.set_figure("wall_seconds", 0.25);
        snap
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample();
        let text = snap.to_json().to_string();
        let back = MetricsSnapshot::parse(&text).unwrap();
        assert_eq!(back, snap);
        assert!((back.total_power_mw() - 133.5).abs() < 1e-9);
    }

    #[test]
    fn schema_drift_is_detected() {
        let text = sample().to_json().to_string();
        let drifted = text.replace(
            &format!("\"schema_version\":{METRICS_SCHEMA_VERSION}"),
            "\"schema_version\":9999",
        );
        let err = MetricsSnapshot::parse(&drifted).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        assert!(MetricsSnapshot::parse("{}").is_err());
    }

    #[test]
    fn v1_documents_are_rejected_with_a_clear_error() {
        // A faithful v1 document (no energy section, version 1).
        let v1 = r#"{"schema_version":1,"blocks":[{"name":"llc","counters":{"hits":12}}],"power_mw":{"cva6":45.5},"total_power_mw":45.5,"figures":{}}"#;
        let err = MetricsSnapshot::parse(v1).unwrap_err();
        assert!(err.contains("no longer supported"), "{err}");
        assert!(err.contains("energy"), "error must say what changed: {err}");
    }

    #[test]
    fn random_snapshots_round_trip() {
        // Property test over the whole schema: any snapshot the exporter
        // can produce parses back identical.
        let mut rng = crate::SplitMix64::new(0x5EED_2026_0807);
        for _ in 0..50 {
            let mut snap = MetricsSnapshot::new();
            for b in 0..(rng.next_u64() % 5) {
                let mut s = Stats::new(format!("block{b}"));
                for c in 0..(rng.next_u64() % 6) {
                    s.set(&format!("c{c}"), rng.next_u64() >> 12);
                }
                snap.push_block(s);
            }
            for p in 0..(rng.next_u64() % 4) {
                snap.set_power_mw(format!("p{p}"), (rng.next_u64() % 100_000) as f64 / 100.0);
            }
            for e in 0..(rng.next_u64() % 4) {
                snap.set_energy(format!("e{e}"), (rng.next_u64() % 100_000) as f64 / 1000.0);
            }
            for f in 0..(rng.next_u64() % 4) {
                snap.set_figure(format!("f{f}"), (rng.next_u64() % 1_000_000) as f64 / 7.0);
            }
            let text = snap.to_json().to_string();
            let back = MetricsSnapshot::parse(&text).unwrap();
            assert_eq!(back, snap, "round-trip drift for {text}");
        }
    }

    #[test]
    fn document_contains_every_block_and_power_entry() {
        let doc = sample().to_json();
        assert_eq!(doc.get("blocks").and_then(Json::as_arr).unwrap().len(), 2);
        let power = doc.get("power_mw").unwrap();
        assert!(power.get("cva6").is_some() && power.get("pmca").is_some());
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_f64),
            Some(f64::from(METRICS_SCHEMA_VERSION))
        );
    }
}
