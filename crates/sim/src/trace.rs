//! Cycle-stamped structured event tracing for the whole SoC.
//!
//! Every modeled block (cores, caches, DRAM, DMA, mailbox, interrupt
//! controller, offload runtime) can carry an optional [`SharedTracer`]
//! handle. When no tracer is attached the instrumentation costs a single
//! branch; when attached, events are recorded into a bounded ring buffer
//! (newest events win) gated by a per-category enable mask.
//!
//! Recorded traces export to two formats:
//!
//! * **Chrome `trace_event` JSON** ([`Tracer::chrome_trace`]) — loadable
//!   in Perfetto / `chrome://tracing`, with one named track per hart,
//!   cluster core, cache, DMA engine and DRAM controller. Cycle stamps
//!   are emitted as microseconds (1 cycle = 1 µs) so the UI's zoom is
//!   meaningful.
//! * **flat JSONL** ([`Tracer::jsonl`]) — one JSON object per event, for
//!   ad-hoc scripting and diffing.
//!
//! # Example
//!
//! ```
//! use hulkv_sim::{category, TraceEvent, Tracer, Track};
//!
//! let mut t = Tracer::new(1024);
//! t.enable(category::ALL);
//! t.set_now(10);
//! t.record(Track::HostHart, TraceEvent::Retire { pc: 0x80000000, word: 0x13 });
//! assert_eq!(t.len(), 1);
//! let chrome = t.chrome_trace().to_string();
//! assert!(chrome.contains("traceEvents"));
//! ```

use crate::json::Json;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Event-category bitmask constants for [`Tracer::enable`].
pub mod category {
    /// Instruction retirement (one event per committed instruction).
    pub const RETIRE: u32 = 1 << 0;
    /// Cache hits, misses and (dirty) evictions.
    pub const CACHE: u32 = 1 << 1;
    /// DRAM bursts (HyperRAM / DDR transactions).
    pub const DRAM: u32 = 1 << 2;
    /// DMA transfer start/end.
    pub const DMA: u32 = 1 << 3;
    /// Mailbox doorbell send/receive.
    pub const MAILBOX: u32 = 1 << 4;
    /// Interrupt raise/claim.
    pub const IRQ: u32 = 1 << 5;
    /// Offload begin/end.
    pub const OFFLOAD: u32 = 1 << 6;
    /// Decoded-instruction-cache counter samples (simulator fast path).
    pub const DECODE: u32 = 1 << 7;
    /// Protection and legality events (IOPMP denials, provably misaligned
    /// guest accesses) — the dynamic side of the `hulkv-analyze` checks.
    pub const PROTECT: u32 = 1 << 8;
    /// Everything.
    pub const ALL: u32 = u32::MAX;
}

/// The timeline a trace event belongs to (one Perfetto track each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// The CVA6 host hart.
    HostHart,
    /// One RI5CY cluster core (by hart id).
    ClusterCore(u8),
    /// The host L1 instruction cache.
    HostL1I,
    /// The host L1 data cache.
    HostL1D,
    /// The last-level cache.
    Llc,
    /// The DRAM controller (HyperRAM or DDR).
    Dram,
    /// The µDMA engine (L2SPM ↔ DRAM).
    Dma,
    /// The cluster-internal DMA engine (TCDM ↔ L2/DRAM).
    ClusterDma,
    /// SoC-level control events (offload runtime, mailbox, interrupts).
    Soc,
    /// Timeline counter samples (power, IPC, utilization per window).
    Telemetry,
}

impl Track {
    /// A stable Chrome-trace thread id for the track.
    pub fn tid(self) -> u64 {
        match self {
            Track::HostHart => 1,
            Track::ClusterCore(h) => 10 + u64::from(h),
            Track::HostL1I => 30,
            Track::HostL1D => 31,
            Track::Llc => 32,
            Track::Dram => 33,
            Track::Dma => 40,
            Track::ClusterDma => 41,
            Track::Soc => 50,
            Track::Telemetry => 60,
        }
    }

    /// A human-readable track name.
    pub fn name(self) -> String {
        match self {
            Track::HostHart => "host/cva6".into(),
            Track::ClusterCore(h) => format!("cluster/core{h}"),
            Track::HostL1I => "host/l1i".into(),
            Track::HostL1D => "host/l1d".into(),
            Track::Llc => "mem/llc".into(),
            Track::Dram => "mem/dram".into(),
            Track::Dma => "dma/udma".into(),
            Track::ClusterDma => "dma/cluster".into(),
            Track::Soc => "soc/control".into(),
            Track::Telemetry => "soc/telemetry".into(),
        }
    }
}

/// One structured trace event. All variants are `Copy` so recording never
/// allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction committed.
    Retire {
        /// Program counter of the retired instruction.
        pc: u64,
        /// Raw instruction word.
        word: u32,
    },
    /// A cache access hit.
    CacheHit {
        /// Accessed address.
        addr: u64,
        /// Was this a write access?
        write: bool,
    },
    /// A cache access missed.
    CacheMiss {
        /// Accessed address.
        addr: u64,
        /// Was this a write access?
        write: bool,
    },
    /// A line was evicted.
    CacheEvict {
        /// Base address of the victim line.
        addr: u64,
        /// Whether the line was dirty (caused a writeback).
        dirty: bool,
    },
    /// A DRAM burst transaction.
    DramBurst {
        /// Start address.
        addr: u64,
        /// Transaction size in bytes.
        bytes: u32,
        /// Write (vs read) transaction.
        write: bool,
    },
    /// A DMA transfer was issued.
    DmaStart {
        /// Source address.
        src: u64,
        /// Destination address.
        dst: u64,
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// A DMA transfer completed (exported as a span of its duration).
    DmaEnd {
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// A mailbox doorbell was sent.
    MailboxSend {
        /// Host→cluster (vs cluster→host).
        to_cluster: bool,
        /// Posted value.
        value: u64,
    },
    /// A mailbox message was consumed.
    MailboxRecv {
        /// Consumed by the host (vs by the cluster).
        by_host: bool,
        /// Received value.
        value: u64,
    },
    /// An interrupt line was raised.
    IrqRaise {
        /// Interrupt source id.
        irq: u32,
    },
    /// An interrupt was claimed by a hart.
    IrqClaim {
        /// Interrupt source id.
        irq: u32,
    },
    /// An offload began (doorbell rung, descriptor posted).
    OffloadBegin {
        /// Registered kernel id.
        kernel: u32,
        /// Team size in cores.
        cores: u32,
    },
    /// An offload completed (exported as a span of its duration).
    OffloadEnd {
        /// Registered kernel id.
        kernel: u32,
    },
    /// The IOPMP denied a cluster-side master transaction.
    IopmpDeny {
        /// Faulting SoC address.
        addr: u64,
        /// Access size in bytes.
        bytes: u32,
    },
    /// A core issued a data access not naturally aligned for its size.
    /// The model executes it (splitting at page boundaries as needed);
    /// the event lets the static analyzer's misalignment findings be
    /// confirmed or refuted dynamically.
    Misaligned {
        /// Program counter of the access.
        pc: u64,
        /// Accessed (virtual) address.
        addr: u64,
        /// Access size in bytes.
        bytes: u32,
    },
    /// A decoded-instruction-cache counter sample (emitted on each
    /// invalidation and at core halt; exported as a Chrome counter track).
    DecodeCache {
        /// Fast-path replays so far.
        hits: u64,
        /// Full decode-path executions so far.
        misses: u64,
        /// Whole-cache invalidations so far.
        invalidations: u64,
    },
}

impl TraceEvent {
    /// The category bit of this event (see [`category`]).
    pub fn category(&self) -> u32 {
        match self {
            TraceEvent::Retire { .. } => category::RETIRE,
            TraceEvent::CacheHit { .. }
            | TraceEvent::CacheMiss { .. }
            | TraceEvent::CacheEvict { .. } => category::CACHE,
            TraceEvent::DramBurst { .. } => category::DRAM,
            TraceEvent::DmaStart { .. } | TraceEvent::DmaEnd { .. } => category::DMA,
            TraceEvent::MailboxSend { .. } | TraceEvent::MailboxRecv { .. } => category::MAILBOX,
            TraceEvent::IrqRaise { .. } | TraceEvent::IrqClaim { .. } => category::IRQ,
            TraceEvent::OffloadBegin { .. } | TraceEvent::OffloadEnd { .. } => category::OFFLOAD,
            TraceEvent::DecodeCache { .. } => category::DECODE,
            TraceEvent::IopmpDeny { .. } | TraceEvent::Misaligned { .. } => category::PROTECT,
        }
    }

    /// A short event name (used in both export formats).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Retire { .. } => "retire",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::CacheEvict { .. } => "cache_evict",
            TraceEvent::DramBurst { .. } => "dram_burst",
            TraceEvent::DmaStart { .. } => "dma_start",
            TraceEvent::DmaEnd { .. } => "dma",
            TraceEvent::MailboxSend { .. } => "mailbox_send",
            TraceEvent::MailboxRecv { .. } => "mailbox_recv",
            TraceEvent::IrqRaise { .. } => "irq_raise",
            TraceEvent::IrqClaim { .. } => "irq_claim",
            TraceEvent::OffloadBegin { .. } => "offload_begin",
            TraceEvent::OffloadEnd { .. } => "offload",
            TraceEvent::DecodeCache { .. } => "decode_cache",
            TraceEvent::IopmpDeny { .. } => "iopmp_deny",
            TraceEvent::Misaligned { .. } => "misaligned",
        }
    }

    /// The category name, for the Chrome-trace `cat` field.
    pub fn category_name(&self) -> &'static str {
        match self.category() {
            category::RETIRE => "retire",
            category::CACHE => "cache",
            category::DRAM => "dram",
            category::DMA => "dma",
            category::MAILBOX => "mailbox",
            category::IRQ => "irq",
            category::DECODE => "decode",
            category::PROTECT => "protect",
            _ => "offload",
        }
    }

    fn args(&self) -> Json {
        let hex = |v: u64| Json::Str(format!("{v:#x}"));
        match *self {
            TraceEvent::Retire { pc, word } => {
                Json::obj([("pc", hex(pc)), ("word", hex(u64::from(word)))])
            }
            TraceEvent::CacheHit { addr, write } | TraceEvent::CacheMiss { addr, write } => {
                Json::obj([("addr", hex(addr)), ("write", Json::from(write))])
            }
            TraceEvent::CacheEvict { addr, dirty } => {
                Json::obj([("addr", hex(addr)), ("dirty", Json::from(dirty))])
            }
            TraceEvent::DramBurst { addr, bytes, write } => Json::obj([
                ("addr", hex(addr)),
                ("bytes", Json::from(u64::from(bytes))),
                ("write", Json::from(write)),
            ]),
            TraceEvent::DmaStart { src, dst, bytes } => Json::obj([
                ("src", hex(src)),
                ("dst", hex(dst)),
                ("bytes", Json::from(bytes)),
            ]),
            TraceEvent::DmaEnd { bytes } => Json::obj([("bytes", Json::from(bytes))]),
            TraceEvent::MailboxSend { to_cluster, value } => Json::obj([
                ("to_cluster", Json::from(to_cluster)),
                ("value", hex(value)),
            ]),
            TraceEvent::MailboxRecv { by_host, value } => {
                Json::obj([("by_host", Json::from(by_host)), ("value", hex(value))])
            }
            TraceEvent::IrqRaise { irq } | TraceEvent::IrqClaim { irq } => {
                Json::obj([("irq", Json::from(u64::from(irq)))])
            }
            TraceEvent::OffloadBegin { kernel, cores } => Json::obj([
                ("kernel", Json::from(u64::from(kernel))),
                ("cores", Json::from(u64::from(cores))),
            ]),
            TraceEvent::OffloadEnd { kernel } => {
                Json::obj([("kernel", Json::from(u64::from(kernel)))])
            }
            TraceEvent::IopmpDeny { addr, bytes } => {
                Json::obj([("addr", hex(addr)), ("bytes", Json::from(u64::from(bytes)))])
            }
            TraceEvent::Misaligned { pc, addr, bytes } => Json::obj([
                ("pc", hex(pc)),
                ("addr", hex(addr)),
                ("bytes", Json::from(u64::from(bytes))),
            ]),
            TraceEvent::DecodeCache {
                hits,
                misses,
                invalidations,
            } => Json::obj([
                ("hits", Json::from(hits)),
                ("misses", Json::from(misses)),
                ("invalidations", Json::from(invalidations)),
            ]),
        }
    }
}

/// One recorded event: a cycle stamp, an optional duration (spans), the
/// track it belongs to, and the event payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle stamp (SoC-global monotone timebase).
    pub ts: u64,
    /// Span duration in cycles; zero for instant events.
    pub dur: u64,
    /// Owning track.
    pub track: Track,
    /// Event payload.
    pub event: TraceEvent,
}

/// The event recorder: a bounded ring buffer plus a category enable mask
/// and a global monotone cycle cursor that components stamp events with.
#[derive(Debug)]
pub struct Tracer {
    mask: u32,
    now: u64,
    capacity: usize,
    ring: VecDeque<TraceRecord>,
    dropped: u64,
}

/// A tracer handle shareable across single-threaded model components
/// (same idiom as `SharedMem` in the memory substrate).
pub type SharedTracer = Rc<RefCell<Tracer>>;

impl Tracer {
    /// Creates a tracer with all categories disabled and room for
    /// `capacity` events (oldest events are dropped beyond that).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            mask: 0,
            now: 0,
            capacity: capacity.max(1),
            ring: VecDeque::with_capacity(capacity.max(1)),
            dropped: 0,
        }
    }

    /// Creates a shared tracer handle (see [`SharedTracer`]).
    pub fn shared(capacity: usize) -> SharedTracer {
        Rc::new(RefCell::new(Tracer::new(capacity)))
    }

    /// Enables the categories in `mask` (bits from [`category`]).
    pub fn enable(&mut self, mask: u32) {
        self.mask |= mask;
    }

    /// Disables the categories in `mask`.
    pub fn disable(&mut self, mask: u32) {
        self.mask &= !mask;
    }

    /// The current enable mask.
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Is any category in `mask` enabled?
    pub fn enabled(&self, mask: u32) -> bool {
        self.mask & mask != 0
    }

    /// Advances the global cycle cursor (monotone: earlier times are
    /// ignored, so per-track stamps never go backwards).
    pub fn set_now(&mut self, cycle: u64) {
        if cycle > self.now {
            self.now = cycle;
        }
    }

    /// The current global cycle cursor.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Records an instant event at the current cycle cursor. Returns
    /// without touching the ring when the event's category is disabled.
    pub fn record(&mut self, track: Track, event: TraceEvent) {
        self.push(track, event, 0);
    }

    /// Records a span of `dur` cycles starting at the current cursor, and
    /// advances the cursor past it.
    pub fn record_span(&mut self, track: Track, event: TraceEvent, dur: u64) {
        self.push(track, event, dur);
        self.now += dur;
    }

    fn push(&mut self, track: Track, event: TraceEvent, dur: u64) {
        if self.mask & event.category() == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceRecord {
            ts: self.now,
            dur,
            track,
            event,
        });
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events dropped to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Drops all buffered events (enable mask and cursor are kept).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.dropped = 0;
    }

    /// Exports the buffer as a Chrome `trace_event` JSON document
    /// (Perfetto / `chrome://tracing` compatible). One cycle is emitted
    /// as one microsecond.
    pub fn chrome_trace(&self) -> Json {
        self.chrome_trace_with(&[])
    }

    /// [`Tracer::chrome_trace`] with extra pre-rendered events appended —
    /// the merge point for [`crate::Timeline::chrome_counter_events`]
    /// counter tracks.
    pub fn chrome_trace_with(&self, extra: &[Json]) -> Json {
        let mut events = Vec::with_capacity(self.ring.len() + extra.len() + 16);
        events.push(Json::obj([
            ("ph", Json::from("M")),
            ("pid", Json::from(0u64)),
            ("name", Json::from("process_name")),
            ("args", Json::obj([("name", Json::from("hulkv-soc"))])),
        ]));
        let mut tracks: Vec<Track> = self.ring.iter().map(|r| r.track).collect();
        tracks.sort_by_key(|t| t.tid());
        tracks.dedup();
        for track in tracks {
            events.push(Json::obj([
                ("ph", Json::from("M")),
                ("pid", Json::from(0u64)),
                ("tid", Json::from(track.tid())),
                ("name", Json::from("thread_name")),
                ("args", Json::obj([("name", Json::from(track.name()))])),
            ]));
        }
        for r in &self.ring {
            let mut pairs = vec![
                ("name", Json::from(r.event.name())),
                ("cat", Json::from(r.event.category_name())),
                ("pid", Json::from(0u64)),
                ("tid", Json::from(r.track.tid())),
                ("ts", Json::from(r.ts)),
                ("args", r.event.args()),
            ];
            if matches!(r.event, TraceEvent::DecodeCache { .. }) {
                // Counter samples render as a stacked counter track.
                pairs.push(("ph", Json::from("C")));
            } else if r.dur > 0 {
                pairs.push(("ph", Json::from("X")));
                pairs.push(("dur", Json::from(r.dur)));
            } else {
                pairs.push(("ph", Json::from("i")));
                pairs.push(("s", Json::from("t")));
            }
            events.push(Json::obj(pairs));
        }
        events.extend(extra.iter().cloned());
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::from("ms")),
            (
                "otherData",
                Json::obj([("timebase", Json::from("1 cycle = 1 us"))]),
            ),
        ])
    }

    /// Exports the buffer as flat JSONL: one JSON object per event.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.ring {
            let mut obj = Json::obj([
                ("ts", Json::from(r.ts)),
                ("track", Json::from(r.track.name())),
                ("event", Json::from(r.event.name())),
                ("args", r.event.args()),
            ]);
            if r.dur > 0 {
                if let Json::Obj(m) = &mut obj {
                    m.insert("dur".into(), Json::from(r.dur));
                }
            }
            out.push_str(&obj.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retire(pc: u64) -> TraceEvent {
        TraceEvent::Retire { pc, word: 0x13 }
    }

    #[test]
    fn ring_wraps_and_keeps_newest_events() {
        let mut t = Tracer::new(4);
        t.enable(category::ALL);
        for i in 0..10u64 {
            t.set_now(i);
            t.record(Track::HostHart, retire(i));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let pcs: Vec<u64> = t
            .events()
            .map(|r| match r.event {
                TraceEvent::Retire { pc, .. } => pc,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pcs, vec![6, 7, 8, 9], "newest events must survive");
    }

    #[test]
    fn disabled_categories_record_nothing_and_never_grow_the_ring() {
        let mut t = Tracer::new(8);
        t.enable(category::CACHE);
        let spare = t.ring.capacity();
        for i in 0..100 {
            t.record(Track::HostHart, retire(i));
        }
        assert!(t.is_empty(), "disabled category must not record");
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.ring.capacity(), spare, "no allocation on disabled path");
        // The enabled category still records.
        t.record(
            Track::Llc,
            TraceEvent::CacheHit {
                addr: 0x40,
                write: false,
            },
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn zero_mask_records_nothing() {
        let mut t = Tracer::new(8);
        t.record(Track::HostHart, retire(0));
        t.record_span(Track::Dma, TraceEvent::DmaEnd { bytes: 64 }, 10);
        assert!(t.is_empty());
    }

    #[test]
    fn set_now_is_monotone() {
        let mut t = Tracer::new(8);
        t.set_now(100);
        t.set_now(50);
        assert_eq!(t.now(), 100);
        t.record_span(Track::Dma, TraceEvent::DmaEnd { bytes: 1 }, 25);
        assert_eq!(t.now(), 125);
    }

    #[test]
    fn chrome_export_round_trips_and_timestamps_are_monotone_per_track() {
        let mut t = Tracer::new(64);
        t.enable(category::ALL);
        t.set_now(5);
        t.record(Track::HostHart, retire(0x100));
        t.record(
            Track::Soc,
            TraceEvent::OffloadBegin {
                kernel: 1,
                cores: 8,
            },
        );
        t.record(
            Track::Dma,
            TraceEvent::DmaStart {
                src: 0x1000,
                dst: 0x2000,
                bytes: 256,
            },
        );
        t.record_span(Track::Dma, TraceEvent::DmaEnd { bytes: 256 }, 40);
        t.set_now(60);
        t.record(Track::ClusterCore(0), retire(0x1c000000));
        t.record(
            Track::Llc,
            TraceEvent::CacheMiss {
                addr: 0x80000000,
                write: false,
            },
        );
        t.set_now(90);
        t.record(Track::HostHart, retire(0x104));
        t.record_span(Track::Soc, TraceEvent::OffloadEnd { kernel: 1 }, 30);

        let text = t.chrome_trace().to_string();
        let doc = Json::parse(&text).expect("chrome trace must be valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();

        // Metadata names every referenced track; real events are stamped.
        let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
        let mut tids = std::collections::BTreeSet::new();
        for e in events {
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            if ph == "M" {
                continue;
            }
            let tid = e.get("tid").and_then(Json::as_f64).unwrap() as u64;
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            tids.insert(tid);
            if let Some(prev) = last_ts.insert(tid, ts) {
                assert!(ts >= prev, "track {tid} went backwards: {prev} -> {ts}");
            }
        }
        // Host hart, a cluster core, the DMA engine and the LLC all present.
        for tid in [
            Track::HostHart.tid(),
            Track::ClusterCore(0).tid(),
            Track::Dma.tid(),
            Track::Llc.tid(),
        ] {
            assert!(tids.contains(&tid), "missing track {tid}");
        }
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let mut t = Tracer::new(8);
        t.enable(category::ALL);
        t.record(Track::HostHart, retire(4));
        t.record_span(
            Track::Dram,
            TraceEvent::DramBurst {
                addr: 0,
                bytes: 64,
                write: true,
            },
            12,
        );
        let dump = t.jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = Json::parse(line).unwrap();
            assert!(v.get("ts").is_some());
            assert!(v.get("event").is_some());
        }
    }
}
