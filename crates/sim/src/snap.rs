//! Versioned snapshot container for full-machine state.
//!
//! A [`Snapshot`] carries two kinds of payload:
//!
//! * a set of named JSON **sections** (one per architectural block: core,
//!   caches, devices…) built on the crate's own [`Json`] model, with every
//!   `u64` encoded as a hex *string* so values above 2^53 survive the f64
//!   round-trip exactly, and
//! * a compact binary **blob arena** for bulk state (memory pages, cache
//!   line data, register files), referenced from the sections by
//!   offset/length descriptors.
//!
//! The byte format is `HULKVSNP` + format version + header length + header
//! JSON + blob length + blob. [`Snapshot::from_bytes`] schema-checks the
//! magic, the format version and the header shape before any block tries
//! to restore, so a stale or truncated file fails loudly up front instead
//! of deserializing garbage into a core.

use crate::json::Json;
use crate::stats::Stats;
use std::collections::BTreeMap;
use std::fmt;

/// Current snapshot format version. Bump on any incompatible change to the
/// section schema or the blob encodings.
pub const SNAPSHOT_FORMAT: u32 = 1;

const MAGIC: &[u8; 8] = b"HULKVSNP";

/// Page granularity of [`Snapshot::push_pages`] (matches the sparse DRAM
/// storage and the MMU page size).
pub const SNAP_PAGE_SIZE: usize = 4096;

/// A snapshot (de)serialization failure: schema mismatch, missing section,
/// malformed descriptor, or geometry disagreement on restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError(pub String);

impl SnapError {
    /// Creates an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        SnapError(m.to_string())
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapError {}

/// Shorthand for snapshot results.
pub type SnapResult<T> = Result<T, SnapError>;

/// Serializes a `u64` as a hex string (exact for the full 64-bit range,
/// unlike [`Json::Num`]'s f64).
pub fn hex(v: u64) -> Json {
    Json::Str(format!("{v:#x}"))
}

/// Parses a value written by [`hex`] (plain numbers are accepted too, for
/// hand-written fixtures).
pub fn unhex(j: &Json) -> SnapResult<u64> {
    match j {
        Json::Str(s) => {
            let t = s.strip_prefix("0x").unwrap_or(s);
            u64::from_str_radix(t, 16).map_err(|e| SnapError::msg(format!("bad hex {s:?}: {e}")))
        }
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Ok(*n as u64),
        other => Err(SnapError::msg(format!("expected hex string, got {other}"))),
    }
}

/// Looks up a required key on a JSON object.
pub fn get<'a>(j: &'a Json, key: &str) -> SnapResult<&'a Json> {
    j.get(key)
        .ok_or_else(|| SnapError::msg(format!("missing field {key:?}")))
}

/// Reads a required hex-encoded `u64` field.
pub fn get_u64(j: &Json, key: &str) -> SnapResult<u64> {
    unhex(get(j, key)?)
}

/// Reads a required boolean field.
pub fn get_bool(j: &Json, key: &str) -> SnapResult<bool> {
    match get(j, key)? {
        Json::Bool(b) => Ok(*b),
        other => Err(SnapError::msg(format!(
            "{key:?}: expected bool, got {other}"
        ))),
    }
}

/// Reads a required array field.
pub fn get_arr<'a>(j: &'a Json, key: &str) -> SnapResult<&'a [Json]> {
    get(j, key)?
        .as_arr()
        .ok_or_else(|| SnapError::msg(format!("{key:?}: expected array")))
}

/// Serializes a [`Stats`] registry, keeping zero-valued keys so the restored
/// registry compares equal under [`Stats`]' key-set-sensitive equality.
pub fn stats_to_json(s: &Stats) -> Json {
    Json::obj(
        s.iter()
            .map(|(k, v)| (k.to_owned(), hex(v)))
            .collect::<Vec<_>>(),
    )
}

/// Restores a registry written by [`stats_to_json`]: existing keys (and
/// their [`crate::StatsHandle`]s) are kept and zeroed first, then every
/// recorded key is set to its recorded value.
pub fn restore_stats(stats: &mut Stats, j: &Json) -> SnapResult<()> {
    let Json::Obj(map) = j else {
        return Err(SnapError::msg("stats section is not an object"));
    };
    stats.reset();
    for (k, v) in map {
        stats.set(k, unhex(v)?);
    }
    Ok(())
}

/// A descriptor pointing into the blob arena.
fn blob_desc(off: usize, len: usize) -> Json {
    Json::obj([("off", hex(off as u64)), ("len", hex(len as u64))])
}

/// A versioned, schema-checked machine-state container.
///
/// # Example
///
/// ```
/// use hulkv_sim::snap::{hex, Snapshot};
/// use hulkv_sim::Json;
///
/// let mut s = Snapshot::new();
/// let regs = s.push_blob(&[1, 2, 3, 4]);
/// s.set_section("core", Json::obj([("pc", hex(0x8000_0000)), ("regs", regs)]));
/// let bytes = s.to_bytes();
/// let back = Snapshot::from_bytes(&bytes).unwrap();
/// assert_eq!(back.to_bytes(), bytes);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    sections: BTreeMap<String, Json>,
    blob: Vec<u8>,
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot::new()
    }
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Snapshot {
            sections: BTreeMap::new(),
            blob: Vec::new(),
        }
    }

    /// Adds (or replaces) a named section.
    pub fn set_section(&mut self, name: impl Into<String>, j: Json) {
        self.sections.insert(name.into(), j);
    }

    /// A required section, by name.
    ///
    /// # Errors
    ///
    /// When the section is absent.
    pub fn section(&self, name: &str) -> SnapResult<&Json> {
        self.sections
            .get(name)
            .ok_or_else(|| SnapError::msg(format!("missing section {name:?}")))
    }

    /// Whether a section exists.
    pub fn has_section(&self, name: &str) -> bool {
        self.sections.contains_key(name)
    }

    /// Section names, sorted.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().map(String::as_str)
    }

    /// Appends raw bytes to the blob arena, returning their descriptor.
    pub fn push_blob(&mut self, bytes: &[u8]) -> Json {
        let off = self.blob.len();
        self.blob.extend_from_slice(bytes);
        blob_desc(off, bytes.len())
    }

    /// Resolves a descriptor written by [`Snapshot::push_blob`].
    ///
    /// # Errors
    ///
    /// On malformed or out-of-range descriptors.
    pub fn blob(&self, desc: &Json) -> SnapResult<&[u8]> {
        let off = get_u64(desc, "off")? as usize;
        let len = get_u64(desc, "len")? as usize;
        self.blob
            .get(
                off..off
                    .checked_add(len)
                    .ok_or_else(|| SnapError::msg("blob overflow"))?,
            )
            .ok_or_else(|| {
                SnapError::msg(format!(
                    "blob descriptor {off:#x}+{len:#x} beyond arena of {:#x}",
                    self.blob.len()
                ))
            })
    }

    /// Stores a byte image page-compactly: all-zero 4 kB pages are skipped,
    /// the rest go into the blob as `(page_index: u64 LE, 4096 bytes)`
    /// records. Returns the image descriptor.
    pub fn push_pages(&mut self, data: &[u8]) -> Json {
        let off = self.blob.len();
        let mut count = 0u64;
        for (idx, page) in data.chunks(SNAP_PAGE_SIZE).enumerate() {
            if page.iter().all(|&b| b == 0) {
                continue;
            }
            self.blob.extend_from_slice(&(idx as u64).to_le_bytes());
            self.blob.extend_from_slice(page);
            if page.len() < SNAP_PAGE_SIZE {
                // Final partial page: zero-pad so records are fixed-size.
                self.blob
                    .resize(self.blob.len() + SNAP_PAGE_SIZE - page.len(), 0);
            }
            count += 1;
        }
        let len = self.blob.len() - off;
        Json::obj([
            ("size", hex(data.len() as u64)),
            ("count", hex(count)),
            ("data", blob_desc(off, len)),
        ])
    }

    /// Rebuilds a byte image written by [`Snapshot::push_pages`]: `out` is
    /// zero-filled, then every recorded page is copied in.
    ///
    /// # Errors
    ///
    /// On size mismatch or malformed page records.
    pub fn restore_pages(&self, desc: &Json, out: &mut [u8]) -> SnapResult<()> {
        let size = get_u64(desc, "size")? as usize;
        if size != out.len() {
            return Err(SnapError::msg(format!(
                "image size mismatch: snapshot {size:#x}, target {:#x}",
                out.len()
            )));
        }
        out.fill(0);
        self.visit_pages(desc, |idx, page| {
            let start = idx as usize * SNAP_PAGE_SIZE;
            if start >= out.len() {
                return Err(SnapError::msg(format!("page {idx:#x} beyond image")));
            }
            let n = (out.len() - start).min(SNAP_PAGE_SIZE);
            out[start..start + n].copy_from_slice(&page[..n]);
            Ok(())
        })
    }

    /// Iterates over the `(page_index, page_bytes)` records of a paged
    /// image (for sparse targets that materialize pages on demand).
    ///
    /// # Errors
    ///
    /// On malformed page records, or whatever `f` returns.
    pub fn visit_pages(
        &self,
        desc: &Json,
        mut f: impl FnMut(u64, &[u8]) -> SnapResult<()>,
    ) -> SnapResult<()> {
        let count = get_u64(desc, "count")?;
        let data = self.blob(get(desc, "data")?)?;
        let rec = 8 + SNAP_PAGE_SIZE;
        if data.len() != count as usize * rec {
            return Err(SnapError::msg(format!(
                "paged image: {count} records need {:#x} bytes, have {:#x}",
                count as usize * rec,
                data.len()
            )));
        }
        for r in data.chunks_exact(rec) {
            let idx = u64::from_le_bytes(r[..8].try_into().expect("8 bytes"));
            f(idx, &r[8..])?;
        }
        Ok(())
    }

    /// The declared size of a paged image (without rebuilding it).
    ///
    /// # Errors
    ///
    /// On a malformed descriptor.
    pub fn pages_size(&self, desc: &Json) -> SnapResult<u64> {
        get_u64(desc, "size")
    }

    /// Serializes to the versioned byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let header = Json::obj([
            ("format", Json::from(u64::from(SNAPSHOT_FORMAT))),
            ("sections", Json::Obj(self.sections.clone())),
        ])
        .to_string();
        let mut out = Vec::with_capacity(8 + 4 + 8 + header.len() + 8 + self.blob.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&SNAPSHOT_FORMAT.to_le_bytes());
        out.extend_from_slice(&(header.len() as u64).to_le_bytes());
        out.extend_from_slice(header.as_bytes());
        out.extend_from_slice(&(self.blob.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.blob);
        out
    }

    /// Parses and schema-checks the byte format.
    ///
    /// # Errors
    ///
    /// On a wrong magic, an unsupported format version, truncation, or a
    /// malformed header document.
    pub fn from_bytes(bytes: &[u8]) -> SnapResult<Snapshot> {
        let take = |off: usize, len: usize| -> SnapResult<&[u8]> {
            bytes
                .get(off..off + len)
                .ok_or_else(|| SnapError::msg("truncated snapshot"))
        };
        if take(0, 8)? != MAGIC {
            return Err(SnapError::msg("bad magic (not a HULK-V snapshot)"));
        }
        let format = u32::from_le_bytes(take(8, 4)?.try_into().expect("4 bytes"));
        if format != SNAPSHOT_FORMAT {
            return Err(SnapError::msg(format!(
                "unsupported snapshot format {format} (this build reads {SNAPSHOT_FORMAT})"
            )));
        }
        let hlen = u64::from_le_bytes(take(12, 8)?.try_into().expect("8 bytes")) as usize;
        let header = std::str::from_utf8(take(20, hlen)?)
            .map_err(|e| SnapError::msg(format!("header not UTF-8: {e}")))?;
        let doc = Json::parse(header).map_err(|e| SnapError::msg(format!("header JSON: {e}")))?;
        let declared = get(&doc, "format")?
            .as_f64()
            .ok_or_else(|| SnapError::msg("format field not a number"))?;
        if declared as u32 != format {
            return Err(SnapError::msg("header/container format disagree"));
        }
        let Some(Json::Obj(sections)) = doc.get("sections").cloned() else {
            return Err(SnapError::msg("sections field missing or not an object"));
        };
        let blen_off = 20 + hlen;
        let blen = u64::from_le_bytes(take(blen_off, 8)?.try_into().expect("8 bytes")) as usize;
        let blob = take(blen_off + 8, blen)?.to_vec();
        if bytes.len() != blen_off + 8 + blen {
            return Err(SnapError::msg("trailing bytes after blob"));
        }
        Ok(Snapshot { sections, blob })
    }

    /// Serialized size in bytes (header + blob), for reporting.
    pub fn byte_len(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips_extremes() {
        for v in [0u64, 1, 2u64.pow(53) + 1, u64::MAX] {
            assert_eq!(unhex(&hex(v)).unwrap(), v, "{v:#x}");
        }
        assert!(unhex(&Json::Str("0xZZ".into())).is_err());
        assert_eq!(unhex(&Json::Num(42.0)).unwrap(), 42);
    }

    #[test]
    fn container_round_trips() {
        let mut s = Snapshot::new();
        let d = s.push_blob(&[9, 8, 7]);
        s.set_section("a", Json::obj([("blob", d), ("v", hex(u64::MAX))]));
        let bytes = s.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(
            back.blob(get(back.section("a").unwrap(), "blob").unwrap())
                .unwrap(),
            &[9, 8, 7]
        );
    }

    #[test]
    fn schema_checks_reject_garbage() {
        assert!(Snapshot::from_bytes(b"not a snapshot").is_err());
        let mut bytes = Snapshot::new().to_bytes();
        bytes[8] = 0xFF; // format version
        assert!(Snapshot::from_bytes(&bytes).is_err());
        let good = Snapshot::new().to_bytes();
        assert!(Snapshot::from_bytes(&good[..good.len() - 1]).is_err());
    }

    #[test]
    fn pages_skip_zero_and_round_trip() {
        let mut img = vec![0u8; 3 * SNAP_PAGE_SIZE + 100];
        img[5] = 1;
        img[2 * SNAP_PAGE_SIZE + 7] = 2;
        img[3 * SNAP_PAGE_SIZE + 50] = 3; // partial final page
        let mut s = Snapshot::new();
        let d = s.push_pages(&img);
        assert_eq!(get_u64(&d, "count").unwrap(), 3); // page 1 (all zero) skipped
        let mut out = vec![0xAAu8; img.len()];
        s.restore_pages(&d, &mut out).unwrap();
        assert_eq!(out, img);
        let mut wrong = vec![0u8; img.len() + 1];
        assert!(s.restore_pages(&d, &mut wrong).is_err());
    }

    #[test]
    fn stats_round_trip_preserves_zero_keys() {
        let mut a = Stats::new("blk");
        a.set("hits", 3);
        a.set("misses", 0);
        let j = stats_to_json(&a);
        let mut b = Stats::new("blk");
        b.set("hits", 99);
        restore_stats(&mut b, &j).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_section_is_an_error() {
        let s = Snapshot::new();
        assert!(s.section("nope").is_err());
        assert!(!s.has_section("nope"));
    }
}
