//! Per-PC cycle profiling.
//!
//! [`PcProfile`] is a histogram that attributes executed cycles to program
//! counters. The ISS cores feed it on the commit path (when enabled);
//! `hulkv-rv` turns it into a hot-spot report with disassembly and a
//! per-opcode retire histogram (the raw instruction word is stored per PC
//! so the recording path never formats strings or allocates per event).

use std::collections::BTreeMap;

/// Aggregate sample for one program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PcSample {
    /// Number of times an instruction at this PC retired.
    pub count: u64,
    /// Total cycles attributed to this PC (issue + stall).
    pub cycles: u64,
    /// The most recent raw instruction word observed at this PC.
    pub word: u32,
}

/// A per-PC cycle histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PcProfile {
    samples: BTreeMap<u64, PcSample>,
    total_cycles: u64,
    total_retired: u64,
}

impl PcProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one retired instruction at `pc` costing `cycles`.
    pub fn record(&mut self, pc: u64, word: u32, cycles: u64) {
        let s = self.samples.entry(pc).or_default();
        s.count += 1;
        s.cycles += cycles;
        s.word = word;
        self.total_cycles += cycles;
        self.total_retired += 1;
    }

    /// Total cycles across all PCs.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total retired instructions across all PCs.
    pub fn total_retired(&self) -> u64 {
        self.total_retired
    }

    /// Number of distinct PCs observed.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates `(pc, sample)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &PcSample)> {
        self.samples.iter().map(|(pc, s)| (*pc, s))
    }

    /// The `n` hottest PCs by attributed cycles, descending.
    pub fn top(&self, n: usize) -> Vec<(u64, PcSample)> {
        let mut all: Vec<(u64, PcSample)> = self.samples.iter().map(|(pc, s)| (*pc, *s)).collect();
        all.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &PcProfile) {
        for (pc, s) in other.iter() {
            let e = self.samples.entry(pc).or_default();
            e.count += s.count;
            e.cycles += s.cycles;
            e.word = s.word;
        }
        self.total_cycles += other.total_cycles;
        self.total_retired += other.total_retired;
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.total_cycles = 0;
        self.total_retired = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_ranks_hot_spots() {
        let mut p = PcProfile::new();
        p.record(0x100, 0x13, 1);
        p.record(0x104, 0x93, 10);
        p.record(0x104, 0x93, 10);
        p.record(0x108, 0x33, 3);
        assert_eq!(p.total_cycles(), 24);
        assert_eq!(p.total_retired(), 4);
        assert_eq!(p.len(), 3);
        let top = p.top(2);
        assert_eq!(top[0].0, 0x104);
        assert_eq!(top[0].1.cycles, 20);
        assert_eq!(top[0].1.count, 2);
        assert_eq!(top[1].0, 0x108);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PcProfile::new();
        a.record(0x100, 0x13, 2);
        let mut b = PcProfile::new();
        b.record(0x100, 0x13, 3);
        b.record(0x200, 0x33, 1);
        a.merge(&b);
        assert_eq!(a.total_cycles(), 6);
        assert_eq!(a.top(1)[0].1.cycles, 5);
        a.reset();
        assert!(a.is_empty());
        assert_eq!(a.total_cycles(), 0);
    }
}
