//! A tiny deterministic random number generator.

/// The SplitMix64 generator.
///
/// Used wherever the models need reproducible pseudo-random data (workload
/// inputs, property-test corpora seeds, randomized access streams) without
/// bringing a heavyweight dependency into the model crates. The sequence is
/// fixed for a given seed on every platform.
///
/// # Example
///
/// ```
/// use hulkv_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a value uniformly distributed in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift reduction; the tiny modulo bias is irrelevant for
        // workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a float uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Splits off an independent child generator.
    ///
    /// The child is seeded from the parent's output stream mixed with a
    /// caller-supplied stream label, so sibling streams (`fork(0)`,
    /// `fork(1)`, …) are decorrelated from each other and from the parent's
    /// subsequent output. The parent advances by exactly one draw, which
    /// keeps fork layouts reproducible: the fuzzer derives one child per
    /// generated program this way, so program *k* is a pure function of
    /// `(root seed, k)` no matter how many draws earlier programs made.
    ///
    /// # Example
    ///
    /// ```
    /// use hulkv_sim::SplitMix64;
    ///
    /// let mut root = SplitMix64::new(7);
    /// let mut a = root.fork(0);
    /// let mut b = root.fork(1);
    /// assert_ne!(a.next_u64(), b.next_u64());
    /// ```
    pub fn fork(&mut self, stream: u64) -> SplitMix64 {
        // The golden-gamma increment separates the label dimension from the
        // state dimension before SplitMix's finalizer scrambles both.
        let label = stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SplitMix64::new(self.next_u64() ^ label.rotate_left(32))
    }

    /// Fills a byte slice with pseudo-random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
