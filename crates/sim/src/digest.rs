//! A tiny deterministic digest for state comparison.
//!
//! The differential co-simulation driver (see `hulkv-fuzz`) compares the
//! architectural state of two interpreter runs — register files, CSRs,
//! whole memories — after every few thousand retires. Hashing keeps those
//! comparisons O(1) in the driver while the digest itself is a single
//! streaming pass over the state. FNV-1a is used because the inputs are
//! trusted simulator state, not adversarial data: what matters here is
//! determinism across platforms and zero dependencies, not collision
//! resistance.

/// Streaming 64-bit FNV-1a hasher.
///
/// # Example
///
/// ```
/// use hulkv_sim::Fnv64;
///
/// let mut a = Fnv64::new();
/// a.write_u64(1).write_u64(2);
/// let mut b = Fnv64::new();
/// b.write_u64(1).write_u64(2);
/// assert_eq!(a.finish(), b.finish());
/// assert_ne!(Fnv64::new().write_u64(3).finish(), a.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Fnv64 {
    /// Creates a hasher in the standard FNV-1a offset-basis state.
    pub const fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c — the published test vector.
        assert_eq!(Fnv64::new().write(b"a").finish(), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn order_sensitive() {
        let ab = Fnv64::new().write_u64(1).write_u64(2).finish();
        let ba = Fnv64::new().write_u64(2).write_u64(1).finish();
        assert_ne!(ab, ba);
    }

    #[test]
    fn empty_is_offset_basis() {
        assert_eq!(Fnv64::new().finish(), 0xCBF2_9CE4_8422_2325);
    }
}
