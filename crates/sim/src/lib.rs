//! Simulation substrate for the HULK-V SoC model.
//!
//! This crate provides the domain-neutral building blocks shared by every
//! other crate in the workspace:
//!
//! * [`Cycles`] and [`Freq`] — strongly typed cycle counts and clock
//!   frequencies, with exact rational conversion between clock domains.
//! * [`ClockDomain`] — one of the four frequency domains of the HULK-V SoC
//!   (host core, host interconnect, peripherals, accelerator cluster), each
//!   driven by its own frequency-locked loop in the real chip.
//! * [`Stats`] / [`Counter`] — hierarchical activity counters used to derive
//!   utilization figures for the power model.
//! * [`SplitMix64`] — a tiny deterministic RNG so that workload generation is
//!   reproducible without pulling heavyweight dependencies into the model
//!   crates.
//!
//! # Example
//!
//! ```
//! use hulkv_sim::{ClockDomain, Cycles, Freq};
//!
//! // The PMCA runs at 400 MHz while the host interconnect runs at 450 MHz.
//! let cluster = ClockDomain::new("cluster", Freq::mhz(400));
//! let soc = ClockDomain::new("soc", Freq::mhz(450));
//!
//! // 800 cluster cycles seen from the SoC domain:
//! let c = cluster.convert(Cycles::new(800), &soc);
//! assert_eq!(c, Cycles::new(900));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod cycles;
mod digest;
mod error;
pub mod json;
pub mod metrics;
pub mod profile;
mod rng;
pub mod snap;
mod stats;
pub mod timeline;
pub mod trace;

pub use clock::{convert_freq, ClockDomain};
pub use cycles::{Cycles, Freq};
pub use digest::Fnv64;
pub use error::SimError;
pub use json::Json;
pub use metrics::{MetricsSnapshot, METRICS_SCHEMA_VERSION};
pub use profile::{PcProfile, PcSample};
pub use rng::SplitMix64;
pub use snap::{SnapError, SnapResult, Snapshot, SNAPSHOT_FORMAT};
pub use stats::{Counter, Stats, StatsHandle};
pub use timeline::{Timeline, TimelineWindow};
pub use trace::{category, SharedTracer, TraceEvent, TraceRecord, Tracer, Track};
