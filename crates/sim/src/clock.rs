//! Clock domains and exact cross-domain cycle conversion.

use crate::{Cycles, Freq};
use std::fmt;

/// One of the SoC's frequency domains.
///
/// HULK-V is split into four domains, each tuned by its own frequency-locked
/// loop: the host core (CVA6, up to 900 MHz), the host interconnect
/// (450 MHz), the peripheral domain, and the accelerator cluster (400 MHz).
/// The memory devices add further derived clocks (e.g. the HyperBUS runs at
/// half the SoC frequency).
///
/// Conversions always round **up**: a transaction that occupies a fraction of
/// a destination-domain cycle still occupies the whole cycle, which is how a
/// synchronizer behaves in hardware.
///
/// # Example
///
/// ```
/// use hulkv_sim::{ClockDomain, Cycles, Freq};
///
/// let hyper = ClockDomain::new("hyperbus", Freq::mhz(225));
/// let soc = ClockDomain::new("soc", Freq::mhz(450));
/// // One HyperBUS cycle is two SoC cycles.
/// assert_eq!(hyper.convert(Cycles::new(1), &soc), Cycles::new(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClockDomain {
    name: String,
    freq: Freq,
}

impl ClockDomain {
    /// Creates a clock domain with a human-readable name.
    pub fn new(name: impl Into<String>, freq: Freq) -> Self {
        ClockDomain {
            name: name.into(),
            freq,
        }
    }

    /// The domain name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The domain frequency.
    pub fn freq(&self) -> Freq {
        self.freq
    }

    /// Re-clocks this domain (dynamic frequency scaling).
    pub fn set_freq(&mut self, freq: Freq) {
        self.freq = freq;
    }

    /// Converts a cycle count measured in `self` into cycles of `dst`,
    /// rounding up.
    ///
    /// The conversion is exact rational arithmetic over kHz values, so no
    /// drift accumulates across repeated conversions of the same quantity.
    pub fn convert(&self, cycles: Cycles, dst: &ClockDomain) -> Cycles {
        convert_freq(cycles, self.freq, dst.freq)
    }

    /// Wall-clock seconds taken by `cycles` of this domain.
    pub fn seconds(&self, cycles: Cycles) -> f64 {
        cycles.to_seconds(self.freq)
    }
}

impl fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.name, self.freq)
    }
}

/// Converts a cycle count from one frequency to another, rounding up.
///
/// This is the free-function form of [`ClockDomain::convert`] for call sites
/// that have no domain objects at hand.
///
/// # Example
///
/// ```
/// use hulkv_sim::{Cycles, Freq};
///
/// let c = hulkv_sim::convert_freq(Cycles::new(3), Freq::mhz(100), Freq::mhz(450));
/// assert_eq!(c, Cycles::new(14)); // ceil(3 * 450/100)
/// ```
pub fn convert_freq(cycles: Cycles, src: Freq, dst: Freq) -> Cycles {
    if src == dst {
        return cycles;
    }
    let n = cycles.get() as u128 * dst.khz() as u128;
    let d = src.khz() as u128;
    Cycles::new(n.div_ceil(d) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_conversion() {
        let a = ClockDomain::new("a", Freq::mhz(450));
        let b = ClockDomain::new("b", Freq::mhz(450));
        assert_eq!(a.convert(Cycles::new(123), &b), Cycles::new(123));
    }

    #[test]
    fn faster_to_slower_rounds_up() {
        let fast = ClockDomain::new("fast", Freq::mhz(900));
        let slow = ClockDomain::new("slow", Freq::mhz(400));
        // 1 cycle @900 = 0.444 cycles @400 -> rounds to 1.
        assert_eq!(fast.convert(Cycles::new(1), &slow), Cycles::new(1));
        assert_eq!(fast.convert(Cycles::new(9), &slow), Cycles::new(4));
    }

    #[test]
    fn slower_to_faster() {
        let slow = ClockDomain::new("hyper", Freq::mhz(225));
        let fast = ClockDomain::new("soc", Freq::mhz(450));
        assert_eq!(slow.convert(Cycles::new(10), &fast), Cycles::new(20));
    }

    #[test]
    fn zero_converts_to_zero() {
        let a = ClockDomain::new("a", Freq::mhz(1));
        let b = ClockDomain::new("b", Freq::mhz(1000));
        assert_eq!(a.convert(Cycles::ZERO, &b), Cycles::ZERO);
    }

    #[test]
    fn display_and_accessors() {
        let mut d = ClockDomain::new("cluster", Freq::mhz(400));
        assert_eq!(d.to_string(), "cluster @ 400 MHz");
        assert_eq!(d.name(), "cluster");
        d.set_freq(Freq::mhz(200));
        assert_eq!(d.freq(), Freq::mhz(200));
    }

    #[test]
    fn seconds_roundtrip() {
        let d = ClockDomain::new("x", Freq::mhz(50));
        assert!((d.seconds(Cycles::new(50_000_000)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_overflow_on_large_counts() {
        let c = convert_freq(Cycles::new(u64::MAX / 2), Freq::mhz(1000), Freq::mhz(2000));
        assert_eq!(c.get(), u64::MAX - 1);
    }
}
