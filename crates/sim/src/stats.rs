//! Activity counters and statistics registries.

use std::collections::BTreeMap;
use std::fmt;

/// A single monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use hulkv_sim::Counter;
///
/// let mut hits = Counter::new();
/// hits.add(3);
/// hits.inc();
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A stable index into a [`Stats`] registry, returned by [`Stats::handle`].
///
/// Blocks on per-access hot paths (cache hits, bus transfers) register
/// their counters once at construction and then update them by index with
/// [`Stats::bump`], which is a plain array increment — no key lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsHandle(usize);

/// A named collection of counters, used by every model block to report
/// activity (cache hits/misses, DRAM bytes, retired instructions, stalls…).
///
/// The power model consumes these counts to compute per-block utilization,
/// mirroring how the paper extracts switching activity from simulation
/// traces for PrimeTime.
///
/// Counters live in a small insertion-ordered vector: by-name access scans
/// linearly (registries hold a dozen keys at most), and hot paths skip the
/// scan entirely via [`Stats::handle`] / [`Stats::bump`]. Iteration and
/// display stay in key order regardless of insertion order.
///
/// # Example
///
/// ```
/// use hulkv_sim::Stats;
///
/// let mut s = Stats::new("llc");
/// s.add("hit", 10);
/// s.add("miss", 2);
/// assert_eq!(s.get("hit"), 10);
/// assert!((s.ratio("hit", "miss") - 10.0 / 12.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stats {
    name: String,
    counters: Vec<(String, u64)>,
}

impl Stats {
    /// Creates an empty registry with a block name.
    pub fn new(name: impl Into<String>) -> Self {
        Stats {
            name: name.into(),
            counters: Vec::new(),
        }
    }

    /// The block name.
    pub fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    fn idx(&self, key: &str) -> Option<usize> {
        self.counters.iter().position(|(k, _)| k == key)
    }

    /// Increments counter `key` by one.
    pub fn inc(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Increments counter `key` by `n`.
    pub fn add(&mut self, key: &str, n: u64) {
        match self.idx(key) {
            Some(i) => self.counters[i].1 += n,
            None => self.counters.push((key.to_owned(), n)),
        }
    }

    /// Registers `key` (at zero if new) and returns a stable handle for
    /// [`Stats::bump`]. Handles stay valid for the registry's lifetime;
    /// [`Stats::reset`] zeroes values but keeps keys and handles.
    pub fn handle(&mut self, key: &str) -> StatsHandle {
        StatsHandle(match self.idx(key) {
            Some(i) => i,
            None => {
                self.counters.push((key.to_owned(), 0));
                self.counters.len() - 1
            }
        })
    }

    /// Increments the counter behind `h` by `n` — a plain array increment,
    /// for per-access hot paths.
    #[inline]
    pub fn bump(&mut self, h: StatsHandle, n: u64) {
        self.counters[h.0].1 += n;
    }

    /// Reads counter `key` (zero when never touched).
    pub fn get(&self, key: &str) -> u64 {
        self.idx(key).map_or(0, |i| self.counters[i].1)
    }

    /// `a / (a + b)` as a float; zero when both counters are zero.
    pub fn ratio(&self, a: &str, b: &str) -> f64 {
        let x = self.get(a) as f64;
        let y = self.get(b) as f64;
        if x + y == 0.0 {
            0.0
        } else {
            x / (x + y)
        }
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        let mut pairs: Vec<(&str, u64)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        pairs.sort_unstable_by(|a, b| a.0.cmp(b.0));
        pairs.into_iter()
    }

    /// Sets counter `key` to an absolute value, creating it if needed.
    pub fn set(&mut self, key: &str, value: u64) {
        match self.idx(key) {
            Some(i) => self.counters[i].1 = value,
            None => self.counters.push((key.to_owned(), value)),
        }
    }

    /// Sum of every counter in the registry.
    pub fn total(&self) -> u64 {
        self.counters.iter().map(|(_, v)| v).sum()
    }

    /// Merges another registry into this one, summing shared keys.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Resets every counter to zero (keys are retained).
    pub fn reset(&mut self) {
        for (_, v) in &mut self.counters {
            *v = 0;
        }
    }
}

impl PartialEq for Stats {
    /// Key-order comparison: two registries are equal when they expose the
    /// same name and the same `(key, value)` set, regardless of the order
    /// the keys were first touched in.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.iter().eq(other.iter())
    }
}

impl Eq for Stats {}

impl From<&Stats> for BTreeMap<String, u64> {
    fn from(s: &Stats) -> Self {
        s.iter().map(|(k, v)| (k.to_owned(), v)).collect()
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}]", self.name)?;
        for (k, v) in self.iter() {
            writeln!(f, "  {k}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(5);
        assert_eq!(c.get(), 6);
        assert_eq!(c.to_string(), "6");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Stats::new("l1d");
        s.inc("hit");
        s.add("hit", 9);
        s.add("miss", 10);
        assert_eq!(s.get("hit"), 10);
        assert_eq!(s.get("unknown"), 0);
        assert!((s.ratio("hit", "miss") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn handles_bump_without_lookup() {
        let mut s = Stats::new("c");
        let h = s.handle("hits");
        s.bump(h, 2);
        s.add("hits", 1);
        assert_eq!(s.get("hits"), 3);
        // Handles survive reset and stay bound to their key.
        s.reset();
        s.bump(h, 5);
        assert_eq!(s.get("hits"), 5);
        // Re-registering an existing key returns the same slot.
        assert_eq!(s.handle("hits"), h);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = Stats::new("s");
        a.add("x", 1);
        a.add("y", 2);
        let mut b = Stats::new("s");
        b.add("y", 2);
        b.add("x", 1);
        assert_eq!(a, b);
        b.add("z", 0);
        assert_ne!(a, b);
    }

    #[test]
    fn ratio_of_empty_is_zero() {
        let s = Stats::new("x");
        assert_eq!(s.ratio("a", "b"), 0.0);
    }

    #[test]
    fn merge_sums_shared_keys() {
        let mut a = Stats::new("a");
        a.add("x", 1);
        let mut b = Stats::new("b");
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn reset_keeps_keys() {
        let mut s = Stats::new("s");
        s.add("k", 4);
        s.reset();
        assert_eq!(s.get("k"), 0);
        assert_eq!(s.iter().count(), 1);
    }

    #[test]
    fn set_overwrites_and_total_sums() {
        let mut s = Stats::new("s");
        s.add("a", 2);
        s.set("a", 10);
        s.set("b", 5);
        assert_eq!(s.get("a"), 10);
        assert_eq!(s.total(), 15);
        let map: BTreeMap<String, u64> = (&s).into();
        assert_eq!(map.len(), 2);
        assert_eq!(map["b"], 5);
    }

    #[test]
    fn display_contains_name_and_counters() {
        let mut s = Stats::new("llc");
        s.add("hit", 2);
        let out = s.to_string();
        assert!(out.contains("[llc]"));
        assert!(out.contains("hit: 2"));
    }
}
