//! Strongly typed cycle counts and clock frequencies.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A number of clock cycles in some clock domain.
///
/// `Cycles` is the currency of the whole simulator: every memory device
/// reports access latencies in cycles of its own domain, and cores accumulate
/// `Cycles` as they retire instructions. The type deliberately does not
/// remember *which* domain it belongs to — that is tracked by
/// [`ClockDomain`](crate::ClockDomain), which is the only sanctioned way to
/// convert counts between domains.
///
/// # Example
///
/// ```
/// use hulkv_sim::Cycles;
///
/// let a = Cycles::new(10) + Cycles::new(32);
/// assert_eq!(a.get(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    #[must_use]
    #[inline]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of the two counts.
    #[must_use]
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Converts the count into a wall-clock duration at frequency `f`.
    ///
    /// # Example
    ///
    /// ```
    /// use hulkv_sim::{Cycles, Freq};
    ///
    /// let t = Cycles::new(900_000_000).to_seconds(Freq::mhz(900));
    /// assert!((t - 1.0).abs() < 1e-12);
    /// ```
    pub fn to_seconds(self, f: Freq) -> f64 {
        self.0 as f64 / f.hz() as f64
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Cycles {
    fn from(n: u64) -> Self {
        Cycles(n)
    }
}

/// A clock frequency, stored exactly in kilohertz.
///
/// Frequencies in HULK-V are round numbers of megahertz in the ASIC (450 MHz
/// SoC, 900 MHz CVA6, 400 MHz cluster) and of the FPGA emulator (50 MHz SoC,
/// 25 MHz HyperBUS), so kHz granularity keeps all domain-crossing arithmetic
/// exact.
///
/// # Example
///
/// ```
/// use hulkv_sim::Freq;
///
/// assert_eq!(Freq::mhz(450).khz(), 450_000);
/// assert_eq!(Freq::mhz(450) / 2, Freq::mhz(225));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Freq {
    khz: u64,
}

impl Freq {
    /// Creates a frequency from a megahertz value.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero: a clock domain cannot be stopped in this
    /// model (power gating is handled by the power model instead).
    pub const fn mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "clock frequency must be non-zero");
        Freq { khz: mhz * 1000 }
    }

    /// Creates a frequency from a kilohertz value.
    ///
    /// # Panics
    ///
    /// Panics if `khz` is zero.
    pub const fn khz_new(khz: u64) -> Self {
        assert!(khz > 0, "clock frequency must be non-zero");
        Freq { khz }
    }

    /// Frequency in kilohertz.
    pub const fn khz(self) -> u64 {
        self.khz
    }

    /// Frequency in hertz.
    pub const fn hz(self) -> u64 {
        self.khz * 1000
    }

    /// Frequency in megahertz as a float (used by the power model).
    pub fn as_mhz_f64(self) -> f64 {
        self.khz as f64 / 1000.0
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.khz.is_multiple_of(1000) {
            write!(f, "{} MHz", self.khz / 1000)
        } else {
            write!(f, "{} kHz", self.khz)
        }
    }
}

impl Div<u64> for Freq {
    type Output = Freq;
    fn div(self, rhs: u64) -> Freq {
        assert!(
            rhs > 0 && self.khz.is_multiple_of(rhs),
            "inexact frequency division"
        );
        Freq {
            khz: self.khz / rhs,
        }
    }
}

impl Mul<u64> for Freq {
    type Output = Freq;
    fn mul(self, rhs: u64) -> Freq {
        Freq {
            khz: self.khz * rhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let mut c = Cycles::new(5);
        c += Cycles::new(7);
        assert_eq!(c, Cycles::new(12));
        c -= Cycles::new(2);
        assert_eq!(c.get(), 10);
        assert_eq!(c * 3, Cycles::new(30));
        assert_eq!(c / 2, Cycles::new(5));
        assert_eq!(Cycles::new(3).max(Cycles::new(9)), Cycles::new(9));
        assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(9)), Cycles::ZERO);
    }

    #[test]
    fn cycles_sum_and_from() {
        let total: Cycles = [1u64, 2, 3].into_iter().map(Cycles::from).sum();
        assert_eq!(total, Cycles::new(6));
    }

    #[test]
    fn cycles_display() {
        assert_eq!(Cycles::new(7).to_string(), "7 cycles");
    }

    #[test]
    fn freq_construction_and_display() {
        assert_eq!(Freq::mhz(900).hz(), 900_000_000);
        assert_eq!(Freq::mhz(450).to_string(), "450 MHz");
        assert_eq!(Freq::khz_new(1500).to_string(), "1500 kHz");
    }

    #[test]
    fn freq_scaling() {
        assert_eq!(Freq::mhz(450) / 2, Freq::mhz(225));
        assert_eq!(Freq::mhz(200) * 2, Freq::mhz(400));
    }

    #[test]
    #[should_panic(expected = "inexact")]
    fn freq_inexact_division_panics() {
        let _ = Freq::khz_new(3) / 2;
    }

    #[test]
    fn seconds_at_frequency() {
        let s = Cycles::new(450_000).to_seconds(Freq::mhz(450));
        assert!((s - 1e-3).abs() < 1e-12);
    }
}
