//! Windowed time-series telemetry over block [`Stats`].
//!
//! A [`Timeline`] turns the end-of-run counter registries every block
//! already exposes into a *time series*: the SoC samples all blocks at a
//! configurable cycle period, and each sample closes a window holding the
//! per-counter deltas since the previous one. Downstream enrichment (the
//! power crate) attaches per-window power and energy figures; the exporter
//! then renders the run as CSV, JSONL, or Chrome-trace counter tracks
//! merged into the structured event trace.
//!
//! Sampling is read-only over [`Stats`] — attaching a timeline never
//! changes a single simulated cycle.
//!
//! # Example
//!
//! ```
//! use hulkv_sim::{Stats, Timeline};
//!
//! let mut tl = Timeline::new(1000);
//! let mut core = Stats::new("core");
//! core.add("instret", 800);
//! tl.sample(1000, &[core.clone()]);
//! core.add("instret", 150);
//! tl.sample(2000, &[core]);
//! assert_eq!(tl.windows().len(), 2);
//! assert_eq!(tl.windows()[1].deltas["core.instret"], 150);
//! ```

use crate::json::Json;
use crate::stats::Stats;
use std::collections::BTreeMap;

/// One closed sampling window: counter deltas over `[start_cycle,
/// end_cycle)` plus the power/energy enrichment filled in after the run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimelineWindow {
    /// First cycle covered by the window.
    pub start_cycle: u64,
    /// One past the last cycle covered.
    pub end_cycle: u64,
    /// Counter increments during the window, keyed `block.counter`.
    /// Counters that did not move are omitted.
    pub deltas: BTreeMap<String, u64>,
    /// Per-block power during the window, in milliwatts (enrichment).
    pub power_mw: BTreeMap<String, f64>,
    /// Energy spent in the window, in millijoules (enrichment).
    pub energy_mj: f64,
    /// Derived per-window figures — IPC, utilizations, bandwidth
    /// (enrichment).
    pub figures: BTreeMap<String, f64>,
}

impl TimelineWindow {
    /// Window length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }

    /// Total power over the window, in milliwatts.
    pub fn total_power_mw(&self) -> f64 {
        self.power_mw.values().sum()
    }
}

/// The windowed sampler. The owner calls [`Timeline::sample`] with a
/// monotone cycle cursor and the current block registries; the timeline
/// differences them against the previous sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    period: u64,
    window_start: u64,
    totals: BTreeMap<String, u64>,
    windows: Vec<TimelineWindow>,
}

impl Timeline {
    /// Creates a sampler with the given window period in cycles
    /// (clamped to at least 1).
    pub fn new(period: u64) -> Self {
        Timeline {
            period: period.max(1),
            window_start: 0,
            totals: BTreeMap::new(),
            windows: Vec::new(),
        }
    }

    /// The configured sampling period in cycles.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The cycle at which the next periodic sample is due.
    pub fn next_due(&self) -> u64 {
        self.window_start.saturating_add(self.period)
    }

    /// Whether a periodic sample is due at `cycle`.
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.next_due()
    }

    /// Closes the current window at `cycle`: records the counter deltas of
    /// `blocks` since the previous sample. A sample at (or before) the
    /// window's own start cycle is ignored, so callers may sample on every
    /// boundary event without producing empty windows.
    pub fn sample(&mut self, cycle: u64, blocks: &[Stats]) {
        if cycle <= self.window_start {
            // Still update totals so late-registered counters don't show
            // up as a spurious delta later.
            self.absorb(blocks);
            return;
        }
        let mut deltas = BTreeMap::new();
        for b in blocks {
            for (k, v) in b.iter() {
                let key = format!("{}.{}", b.name(), k);
                let prev = self.totals.get(&key).copied().unwrap_or(0);
                let delta = v.saturating_sub(prev);
                if delta > 0 {
                    deltas.insert(key.clone(), delta);
                }
                self.totals.insert(key, v);
            }
        }
        self.windows.push(TimelineWindow {
            start_cycle: self.window_start,
            end_cycle: cycle,
            deltas,
            power_mw: BTreeMap::new(),
            energy_mj: 0.0,
            figures: BTreeMap::new(),
        });
        self.window_start = cycle;
    }

    fn absorb(&mut self, blocks: &[Stats]) {
        for b in blocks {
            for (k, v) in b.iter() {
                self.totals.insert(format!("{}.{}", b.name(), k), v);
            }
        }
    }

    /// The closed windows, oldest first.
    pub fn windows(&self) -> &[TimelineWindow] {
        &self.windows
    }

    /// Mutable window access, for power/energy enrichment.
    pub fn windows_mut(&mut self) -> &mut [TimelineWindow] {
        &mut self.windows
    }

    /// Number of closed windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no window has been closed yet.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Every delta key appearing in any window, sorted (the CSV columns).
    pub fn delta_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .windows
            .iter()
            .flat_map(|w| w.deltas.keys().cloned())
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// Renders the timeline as CSV: one row per window, with fixed columns
    /// `start_cycle,end_cycle,energy_mj`, then each enrichment figure and
    /// power series, then each counter delta.
    pub fn to_csv(&self) -> String {
        let delta_keys = self.delta_keys();
        let mut fig_keys: Vec<String> = self
            .windows
            .iter()
            .flat_map(|w| w.figures.keys().cloned())
            .collect();
        fig_keys.sort();
        fig_keys.dedup();
        let mut power_keys: Vec<String> = self
            .windows
            .iter()
            .flat_map(|w| w.power_mw.keys().cloned())
            .collect();
        power_keys.sort();
        power_keys.dedup();

        let mut out = String::from("start_cycle,end_cycle,energy_mj");
        for k in &fig_keys {
            out.push(',');
            out.push_str(k);
        }
        for k in &power_keys {
            out.push_str(",power_mw.");
            out.push_str(k);
        }
        for k in &delta_keys {
            out.push(',');
            out.push_str(k);
        }
        out.push('\n');
        for w in &self.windows {
            out.push_str(&format!(
                "{},{},{}",
                w.start_cycle,
                w.end_cycle,
                Json::from(w.energy_mj)
            ));
            for k in &fig_keys {
                out.push(',');
                out.push_str(&Json::from(w.figures.get(k).copied().unwrap_or(0.0)).to_string());
            }
            for k in &power_keys {
                out.push(',');
                out.push_str(&Json::from(w.power_mw.get(k).copied().unwrap_or(0.0)).to_string());
            }
            for k in &delta_keys {
                out.push(',');
                out.push_str(&w.deltas.get(k).copied().unwrap_or(0).to_string());
            }
            out.push('\n');
        }
        out
    }

    /// Renders the timeline as JSONL: one JSON object per window.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for w in &self.windows {
            let obj = Json::obj([
                ("start_cycle", Json::from(w.start_cycle)),
                ("end_cycle", Json::from(w.end_cycle)),
                ("energy_mj", Json::from(w.energy_mj)),
                (
                    "figures",
                    Json::Obj(
                        w.figures
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::from(*v)))
                            .collect(),
                    ),
                ),
                (
                    "power_mw",
                    Json::Obj(
                        w.power_mw
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::from(*v)))
                            .collect(),
                    ),
                ),
                (
                    "deltas",
                    Json::Obj(
                        w.deltas
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::from(*v)))
                            .collect(),
                    ),
                ),
            ]);
            out.push_str(&obj.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders the enriched windows as Chrome `trace_event` counter events
    /// (`"ph":"C"`) on the telemetry track, ready to be merged into a
    /// structured trace via [`crate::Tracer::chrome_trace_with`]. Emits one
    /// stacked `power_mw` counter (one series per block) and one counter
    /// per derived figure, each sampled at its window's start cycle.
    pub fn chrome_counter_events(&self) -> Vec<Json> {
        use crate::trace::Track;
        let mut events = Vec::new();
        if self.windows.iter().all(|w| w.figures.is_empty())
            && self.windows.iter().all(|w| w.power_mw.is_empty())
        {
            return events;
        }
        events.push(Json::obj([
            ("ph", Json::from("M")),
            ("pid", Json::from(0u64)),
            ("tid", Json::from(Track::Telemetry.tid())),
            ("name", Json::from("thread_name")),
            (
                "args",
                Json::obj([("name", Json::from(Track::Telemetry.name()))]),
            ),
        ]));
        let counter = |name: &str, ts: u64, args: Json| {
            Json::obj([
                ("ph", Json::from("C")),
                ("name", Json::from(name)),
                ("cat", Json::from("telemetry")),
                ("pid", Json::from(0u64)),
                ("tid", Json::from(Track::Telemetry.tid())),
                ("ts", Json::from(ts)),
                ("args", args),
            ])
        };
        for w in &self.windows {
            if !w.power_mw.is_empty() {
                events.push(counter(
                    "power_mw",
                    w.start_cycle,
                    Json::Obj(
                        w.power_mw
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::from(*v)))
                            .collect(),
                    ),
                ));
            }
            for (k, v) in &w.figures {
                events.push(counter(
                    k,
                    w.start_cycle,
                    Json::obj([("value", Json::from(*v))]),
                ));
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(name: &str, pairs: &[(&str, u64)]) -> Stats {
        let mut s = Stats::new(name);
        for &(k, v) in pairs {
            s.set(k, v);
        }
        s
    }

    #[test]
    fn windows_hold_deltas_not_totals() {
        let mut tl = Timeline::new(100);
        tl.sample(100, &[stats("core", &[("instret", 90)])]);
        tl.sample(200, &[stats("core", &[("instret", 130)])]);
        tl.sample(300, &[stats("core", &[("instret", 130)])]);
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.windows()[0].deltas["core.instret"], 90);
        assert_eq!(tl.windows()[1].deltas["core.instret"], 40);
        assert!(
            tl.windows()[2].deltas.is_empty(),
            "unchanged counter omitted"
        );
        assert_eq!(tl.windows()[2].cycles(), 100);
    }

    #[test]
    fn due_tracks_the_period() {
        let mut tl = Timeline::new(1000);
        assert!(!tl.due(999));
        assert!(tl.due(1000));
        tl.sample(1500, &[]);
        assert_eq!(tl.next_due(), 2500);
    }

    #[test]
    fn repeated_boundary_samples_do_not_create_empty_windows() {
        let mut tl = Timeline::new(100);
        tl.sample(100, &[stats("b", &[("x", 1)])]);
        tl.sample(100, &[stats("b", &[("x", 2)])]);
        assert_eq!(tl.len(), 1);
        // The ignored sample still advanced the totals: no double count.
        tl.sample(200, &[stats("b", &[("x", 3)])]);
        assert_eq!(tl.windows()[1].deltas["b.x"], 1);
    }

    #[test]
    fn csv_has_a_column_per_key_and_a_row_per_window() {
        let mut tl = Timeline::new(10);
        tl.sample(10, &[stats("a", &[("x", 5)])]);
        tl.sample(20, &[stats("a", &[("x", 5), ("y", 7)])]);
        tl.windows_mut()[1].energy_mj = 0.5;
        tl.windows_mut()[1].power_mw.insert("cva6".into(), 40.0);
        tl.windows_mut()[1].figures.insert("ipc".into(), 0.9);
        let csv = tl.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "start_cycle,end_cycle,energy_mj,ipc,power_mw.cva6,a.x,a.y"
        );
        assert!(lines[1].starts_with("0,10,"));
        assert!(lines[2].starts_with("10,20,0.5,0.9,40,0,7"), "{}", lines[2]);
    }

    #[test]
    fn jsonl_parses_and_is_monotone() {
        let mut tl = Timeline::new(50);
        tl.sample(50, &[stats("a", &[("x", 1)])]);
        tl.sample(120, &[stats("a", &[("x", 4)])]);
        let mut last_end = 0;
        for line in tl.to_jsonl().lines() {
            let v = Json::parse(line).unwrap();
            let start = v.get("start_cycle").and_then(Json::as_f64).unwrap() as u64;
            let end = v.get("end_cycle").and_then(Json::as_f64).unwrap() as u64;
            assert_eq!(start, last_end);
            assert!(end > start);
            last_end = end;
        }
        assert_eq!(last_end, 120);
    }

    #[test]
    fn chrome_counters_only_appear_when_enriched() {
        let mut tl = Timeline::new(10);
        tl.sample(10, &[stats("a", &[("x", 1)])]);
        assert!(tl.chrome_counter_events().is_empty(), "no enrichment yet");
        tl.windows_mut()[0].power_mw.insert("pmca".into(), 80.0);
        let events = tl.chrome_counter_events();
        // Metadata plus one power counter.
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(
            events[1]
                .get("args")
                .and_then(|a| a.get("pmca"))
                .and_then(Json::as_f64),
            Some(80.0)
        );
    }
}
