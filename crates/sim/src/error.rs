//! The shared simulation error type.

use std::error::Error;
use std::fmt;

/// Errors reported by the HULK-V simulation substrate and the models built
/// on top of it.
///
/// # Example
///
/// ```
/// use hulkv_sim::SimError;
///
/// let e = SimError::OutOfRange {
///     what: "hyperram offset",
///     value: 0x4000_0000,
///     limit: 0x2000_0000,
/// };
/// assert!(e.to_string().contains("hyperram offset"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An address fell outside every mapped device region.
    UnmappedAddress {
        /// The faulting physical address.
        addr: u64,
    },
    /// An access was misaligned for its size.
    Misaligned {
        /// The faulting address.
        addr: u64,
        /// Required alignment in bytes.
        align: u64,
    },
    /// A value exceeded a structural limit of the model.
    OutOfRange {
        /// What was out of range.
        what: &'static str,
        /// The offending value.
        value: u64,
        /// The structural limit.
        limit: u64,
    },
    /// A configuration was internally inconsistent.
    InvalidConfig(String),
    /// A model-specific failure with a free-form description.
    Model(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnmappedAddress { addr } => {
                write!(f, "access to unmapped address {addr:#x}")
            }
            SimError::Misaligned { addr, align } => {
                write!(
                    f,
                    "misaligned access to {addr:#x} (requires {align}-byte alignment)"
                )
            }
            SimError::OutOfRange { what, value, limit } => {
                write!(f, "{what} {value:#x} exceeds limit {limit:#x}")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Model(msg) => write!(f, "model error: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::UnmappedAddress { addr: 0x80 }.to_string(),
            "access to unmapped address 0x80"
        );
        assert!(SimError::Misaligned { addr: 3, align: 4 }
            .to_string()
            .contains("4-byte"));
        assert!(SimError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
        assert!(SimError::Model("y".into()).to_string().contains("y"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
