//! A minimal JSON document model with a writer and a parser.
//!
//! The sandbox has no access to external crates, so the trace and metrics
//! exporters build documents with this self-contained implementation
//! instead of `serde_json`. It supports exactly the subset the
//! observability layer emits — objects, arrays, strings, numbers, bools,
//! null — and parses it back so round-trip tests can validate exports.
//!
//! # Example
//!
//! ```
//! use hulkv_sim::Json;
//!
//! let doc = Json::obj([("cycles", Json::from(42u64)), ("name", Json::from("llc"))]);
//! let text = doc.to_string();
//! assert_eq!(Json::parse(&text).unwrap(), doc);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers up to 2^53 survive the f64 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys (deterministic output).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements of an array (`None` on other variants).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value (`None` on other variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value (`None` on other variants).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(f64::from(v))
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Arr(iter.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = Json::obj([
            ("name", Json::from("trace")),
            (
                "events",
                Json::Arr(vec![Json::from(1u64), Json::from(2u64)]),
            ),
            (
                "meta",
                Json::obj([("ok", Json::from(true)), ("none", Json::Null)]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}f — π";
        let v = Json::Str(s.into());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn integers_stay_integral_in_output() {
        assert_eq!(Json::from(1_000_000u64).to_string(), "1000000");
        assert_eq!(Json::from(2.5f64).to_string(), "2.5");
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(
            Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap(),
            Json::obj([("a", Json::Arr(vec![Json::from(1u64), Json::from(2u64)]))])
        );
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::obj([("k", Json::from(7u64)), ("s", Json::from("x"))]);
        assert_eq!(doc.get("k").and_then(Json::as_f64), Some(7.0));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert!(doc.get("missing").is_none());
        assert_eq!(Json::Arr(vec![]).as_arr().unwrap().len(), 0);
    }
}
