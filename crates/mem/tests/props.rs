//! Randomized (seeded, deterministic) tests of the memory substrate: data
//! transparency of every timed device against a plain shadow buffer, DMA
//! equivalence with `memcpy`, and timing monotonicity of the DRAM models.

use hulkv_mem::{
    shared, Cache, CacheConfig, Ddr, DdrConfig, DmaEngine, HyperRam, HyperRamConfig, Llc,
    LlcConfig, MemoryDevice, Sram, Transfer1d, Transfer2d, WritePolicy,
};
use hulkv_sim::{Cycles, SplitMix64};

const CASES: u64 = 24;

/// Drives `dev` and a shadow `Vec<u8>` with the same random access stream
/// and checks every read agrees.
fn data_transparent(dev: &mut dyn MemoryDevice, size: u64, seed: u64) {
    let mut shadow = vec![0u8; size as usize];
    let mut rng = SplitMix64::new(seed);
    for _ in 0..300 {
        let len = 1 + rng.next_below(16) as usize;
        let addr = rng.next_below(size - len as u64);
        if rng.next_below(2) == 0 {
            let mut data = vec![0u8; len];
            rng.fill_bytes(&mut data);
            dev.write(addr, &data).unwrap();
            shadow[addr as usize..addr as usize + len].copy_from_slice(&data);
        } else {
            let mut got = vec![0u8; len];
            dev.read(addr, &mut got).unwrap();
            assert_eq!(&got[..], &shadow[addr as usize..addr as usize + len]);
        }
    }
}

#[test]
fn hyperram_is_data_transparent() {
    for seed in 0..CASES {
        let mut ram = HyperRam::new(HyperRamConfig {
            chips_per_bus: 2,
            chip_bytes: 1 << 16,
            ..HyperRamConfig::default()
        });
        data_transparent(&mut ram, 1 << 17, 0x11aa_0000 + seed);
    }
}

#[test]
fn ddr_is_data_transparent() {
    for seed in 0..CASES {
        let mut ddr = Ddr::new(DdrConfig {
            size_bytes: 1 << 17,
            ..DdrConfig::default()
        });
        data_transparent(&mut ddr, 1 << 17, 0x22bb_0000 + seed);
    }
}

#[test]
fn cache_is_data_transparent_across_geometries() {
    let mut rng = SplitMix64::new(0x33cc_0000);
    for seed in 0..CASES {
        let ways_log = rng.next_below(3) as u32;
        let sets_log = 1 + rng.next_below(4) as u32;
        let write_back = rng.next_below(2) == 1;
        let backing = shared(Sram::new("b", 1 << 14, Cycles::new(20)));
        let cfg = CacheConfig {
            name: "c".into(),
            ways: 1 << ways_log,
            sets: 1 << sets_log,
            line_bytes: 32,
            hit_latency: Cycles::new(1),
            write_policy: if write_back {
                WritePolicy::WriteBack
            } else {
                WritePolicy::WriteThrough
            },
            write_allocate: write_back,
            write_buffer: !write_back,
        };
        let mut cache = Cache::new(cfg, backing).unwrap();
        data_transparent(&mut cache, 1 << 14, 0x33cc_1000 + seed);
        // After a flush, the backing store is fully coherent.
        cache.flush().unwrap();
    }
}

#[test]
fn llc_bypass_window_is_data_transparent() {
    for seed in 0..CASES {
        let backing = shared(Sram::new("b", 1 << 15, Cycles::new(30)));
        let mut llc = Llc::new(
            LlcConfig {
                lines: 8,
                ways: 2,
                cacheable_start: 0x1000,
                cacheable_end: 0x5000,
                ..LlcConfig::default()
            },
            backing,
        )
        .unwrap();
        // Accesses inside, outside and across the window all stay correct.
        data_transparent(&mut llc, 1 << 15, 0x44dd_0000 + seed);
    }
}

#[test]
fn dma_1d_equals_memcpy() {
    let mut rng = SplitMix64::new(0x55ee_0000);
    for _ in 0..CASES {
        let bytes = 1 + rng.next_below(1499) as usize;
        let src = shared(Sram::new("src", 4096, Cycles::new(1)));
        let dst = shared(Sram::new("dst", 4096, Cycles::new(1)));
        let mut data = vec![0u8; bytes];
        rng.fill_bytes(&mut data);
        src.borrow_mut().write(100, &data).unwrap();

        let mut dma = DmaEngine::new("dma", Cycles::new(8), 64);
        dma.run_1d(
            &src,
            &dst,
            Transfer1d {
                src: 100,
                dst: 200,
                bytes,
            },
        )
        .unwrap();
        let mut got = vec![0u8; bytes];
        dst.borrow_mut().read(200, &mut got).unwrap();
        assert_eq!(got, data);
    }
}

#[test]
fn dma_2d_equals_strided_copy() {
    let mut rng = SplitMix64::new(0x66ff_0000);
    for _ in 0..CASES {
        let rows = 1 + rng.next_below(7) as usize;
        let row_bytes = 1 + rng.next_below(63) as usize;
        let pad = rng.next_below(32);
        let src_stride = row_bytes as u64 + pad;
        let src = shared(Sram::new("src", 8192, Cycles::new(1)));
        let dst = shared(Sram::new("dst", 8192, Cycles::new(1)));
        let mut image = vec![0u8; (src_stride as usize) * rows];
        rng.fill_bytes(&mut image);
        src.borrow_mut().write(0, &image).unwrap();

        let mut dma = DmaEngine::new("dma", Cycles::new(8), 32);
        dma.run_2d(
            &src,
            &dst,
            Transfer2d {
                src: 0,
                dst: 0,
                row_bytes,
                rows,
                src_stride,
                dst_stride: row_bytes as u64,
            },
        )
        .unwrap();

        let mut got = vec![0u8; row_bytes * rows];
        dst.borrow_mut().read(0, &mut got).unwrap();
        for r in 0..rows {
            assert_eq!(
                &got[r * row_bytes..(r + 1) * row_bytes],
                &image[r * src_stride as usize..r * src_stride as usize + row_bytes]
            );
        }
    }
}

#[test]
fn hyperram_latency_monotone_in_length() {
    let mut rng = SplitMix64::new(0x7700_0000);
    for _ in 0..CASES {
        let len_a = 1 + rng.next_below(255) as usize;
        let len_b = 1 + rng.next_below(255) as usize;
        let (small, large) = if len_a <= len_b {
            (len_a, len_b)
        } else {
            (len_b, len_a)
        };
        let mut ram = HyperRam::new(HyperRamConfig::default());
        let mut buf = vec![0u8; large];
        let lat_small = ram.read(0, &mut buf[..small]).unwrap();
        let lat_large = ram.read(0, &mut buf[..large]).unwrap();
        assert!(lat_large >= lat_small);
    }
}

#[test]
fn hyperram_crossing_burst_decomposes_into_segments() {
    // Timing identity at chip (CS-decode) boundaries: a burst crossing the
    // boundary costs exactly what its two per-chip segments cost as
    // separate transactions, minus the one duplicated controller
    // front-end. Random lengths and offsets around random boundaries.
    let mut rng = SplitMix64::new(0x7701_0000);
    for _ in 0..CASES {
        let cfg = HyperRamConfig {
            chips_per_bus: 4,
            chip_bytes: 4096,
            dual_bus: rng.next_below(2) == 1,
            ..HyperRamConfig::default()
        };
        let span = if cfg.dual_bus {
            cfg.chip_bytes * 2
        } else {
            cfg.chip_bytes
        };
        let boundary = span * (1 + rng.next_below(2));
        let before = 1 + rng.next_below(64);
        let after = 1 + rng.next_below(64) as usize;
        let start = boundary - before;
        let len = before as usize + after;
        let mut ram = HyperRam::new(cfg.clone());
        let mut buf = vec![0u8; len];
        let whole = ram.read(start, &mut buf).unwrap();
        let seg0 = ram.read(start, &mut buf[..before as usize]).unwrap();
        let seg1 = ram.read(boundary, &mut buf[before as usize..]).unwrap();
        assert_eq!(
            whole + Cycles::new(cfg.frontend_cycles),
            seg0 + seg1,
            "start {start:#x} len {len} dual {}",
            cfg.dual_bus
        );
    }
}

#[test]
fn clock_bridge_preserves_data() {
    use hulkv_mem::ClockBridge;
    use hulkv_sim::Freq;
    for seed in 0..CASES {
        let inner = shared(Sram::new("i", 1 << 12, Cycles::new(3)));
        let mut bridge = ClockBridge::new(inner, Freq::mhz(450), Freq::mhz(900));
        data_transparent(&mut bridge, 1 << 12, 0x8811_0000 + seed);
    }
}
