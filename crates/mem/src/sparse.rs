//! Sparse page-granular storage for large DRAM devices.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse byte storage backed by 4 kB pages allocated on first touch.
///
/// The HyperRAM configuration of HULK-V exposes up to 512 MB to the host;
/// allocating that eagerly for every simulated SoC would be wasteful, so DRAM
/// devices use this container. Untouched bytes read as zero, matching a
/// freshly initialized simulation memory.
///
/// # Example
///
/// ```
/// use hulkv_mem::SparseStorage;
///
/// let mut s = SparseStorage::new(512 * 1024 * 1024);
/// s.write(0x1FFF_FFF0, &[9; 8]);
/// let mut buf = [0u8; 8];
/// s.read(0x1FFF_FFF0, &mut buf);
/// assert_eq!(buf, [9; 8]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseStorage {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    size: u64,
}

impl SparseStorage {
    /// Creates storage of `size` bytes.
    pub fn new(size: u64) -> Self {
        SparseStorage {
            pages: HashMap::new(),
            size,
        }
    }

    /// The addressable size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size
    }

    /// Number of pages actually materialized.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads into `buf`; out-of-range reads are the caller's responsibility
    /// to have rejected (debug-asserted here).
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        debug_assert!(offset + buf.len() as u64 <= self.size);
        let mut pos = 0usize;
        while pos < buf.len() {
            let addr = offset + pos as u64;
            let page = addr >> PAGE_SHIFT;
            let in_page = (addr as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - in_page).min(buf.len() - pos);
            match self.pages.get(&page) {
                Some(p) => buf[pos..pos + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[pos..pos + n].fill(0),
            }
            pos += n;
        }
    }

    /// FNV-1a digest of the stored content.
    ///
    /// Pages are visited in address order (the `HashMap` iteration order is
    /// not deterministic, so the keys are sorted first) and all-zero pages
    /// are skipped, making the digest a pure function of the *readable*
    /// content: writing zeros to an untouched region, which materializes a
    /// page without changing what any read returns, leaves the digest
    /// unchanged. The differential co-simulation driver relies on this to
    /// compare DRAM images between two runs without caring how each run's
    /// access pattern happened to materialize pages.
    pub fn content_digest(&self) -> u64 {
        let mut keys: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, p)| p.iter().any(|&b| b != 0))
            .map(|(&k, _)| k)
            .collect();
        keys.sort_unstable();
        let mut h = hulkv_sim::Fnv64::new();
        for k in keys {
            h.write_u64(k).write(&self.pages[&k][..]);
        }
        h.finish()
    }

    /// Serializes the non-zero resident pages into `snap`'s blob arena.
    ///
    /// Zero pages are dropped exactly as [`SparseStorage::content_digest`]
    /// skips them: a restored storage may hold fewer resident pages than the
    /// original, but every read and the digest are unchanged.
    pub fn snapshot_into(&self, snap: &mut hulkv_sim::Snapshot) -> hulkv_sim::Json {
        use hulkv_sim::snap::hex;
        let mut keys: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, p)| p.iter().any(|&b| b != 0))
            .map(|(&k, _)| k)
            .collect();
        keys.sort_unstable();
        let mut data = Vec::with_capacity(keys.len() * (8 + PAGE_SIZE));
        for k in &keys {
            data.extend_from_slice(&k.to_le_bytes());
            data.extend_from_slice(&self.pages[k][..]);
        }
        let desc = snap.push_blob(&data);
        hulkv_sim::Json::obj([
            ("size", hex(self.size)),
            ("count", hex(keys.len() as u64)),
            ("data", desc),
        ])
    }

    /// Restores state written by [`SparseStorage::snapshot_into`], replacing
    /// all resident pages.
    ///
    /// # Errors
    ///
    /// On size mismatch or malformed page records.
    pub fn restore_from(
        &mut self,
        snap: &hulkv_sim::Snapshot,
        j: &hulkv_sim::Json,
    ) -> hulkv_sim::SnapResult<()> {
        use hulkv_sim::snap::{get_u64, SnapError};
        let size = get_u64(j, "size")?;
        if size != self.size {
            return Err(SnapError::msg(format!(
                "sparse storage size mismatch: snapshot {size:#x}, target {:#x}",
                self.size
            )));
        }
        let pages = &mut self.pages;
        pages.clear();
        snap.visit_pages(j, |idx, bytes| {
            let mut p = Box::new([0u8; PAGE_SIZE]);
            p.copy_from_slice(bytes);
            pages.insert(idx, p);
            Ok(())
        })
    }

    /// Writes `data`, materializing pages as needed.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        debug_assert!(offset + data.len() as u64 <= self.size);
        let mut pos = 0usize;
        while pos < data.len() {
            let addr = offset + pos as u64;
            let page = addr >> PAGE_SHIFT;
            let in_page = (addr as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - in_page).min(data.len() - pos);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            p[in_page..in_page + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_zero() {
        let s = SparseStorage::new(1 << 20);
        let mut b = [7u8; 16];
        s.read(0x8000, &mut b);
        assert_eq!(b, [0u8; 16]);
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn cross_page_write_read() {
        let mut s = SparseStorage::new(1 << 20);
        let data: Vec<u8> = (0..100).collect();
        s.write(4096 - 50, &data);
        let mut b = vec![0u8; 100];
        s.read(4096 - 50, &mut b);
        assert_eq!(b, data);
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn partial_page_preserves_rest() {
        let mut s = SparseStorage::new(1 << 20);
        s.write(0, &[0xAA; 8]);
        s.write(8, &[0xBB; 8]);
        let mut b = [0u8; 16];
        s.read(0, &mut b);
        assert_eq!(&b[..8], &[0xAA; 8]);
        assert_eq!(&b[8..], &[0xBB; 8]);
    }

    #[test]
    fn large_offsets_supported() {
        let mut s = SparseStorage::new(512 << 20);
        s.write((512 << 20) - 4, &[1, 2, 3, 4]);
        let mut b = [0u8; 4];
        s.read((512 << 20) - 4, &mut b);
        assert_eq!(b, [1, 2, 3, 4]);
        assert_eq!(s.size_bytes(), 512 << 20);
    }
}
