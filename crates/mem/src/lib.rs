//! Memory substrate for the HULK-V SoC model.
//!
//! HULK-V's key architectural claim is that a *fully digital, lightweight*
//! memory hierarchy — a last-level cache in front of cheap HyperRAM IoT DRAM —
//! can replace a power-hungry LPDDR4 subsystem for IoT workloads. This crate
//! implements every block of that hierarchy as a timed functional model:
//!
//! * [`MemoryDevice`] — the common trait: byte-addressable storage whose
//!   accesses return a latency in device-domain [`Cycles`](hulkv_sim::Cycles).
//! * [`Sram`] — on-chip scratchpads (the 512 kB L2SPM, the cluster L1SPM
//!   banks).
//! * [`Cache`] — a generic set-associative cache with LRU replacement and
//!   write-back/write-through policies, used for the CVA6 L1 caches and as
//!   the engine of the LLC.
//! * [`Llc`] — the last-level cache of §III-A: a cacheable-region filter in
//!   front of a parameterizable cache sized as
//!   `ways × lines × blocks × AXI_dw`.
//! * [`HyperRam`] — the HyperBUS controller + HyperRAM device model of
//!   §III-B (command/address phase, access latency, DDR burst data, chip
//!   select demux, optional dual-bus interleaving).
//! * [`Ddr`] — the DDR4/LPDDR4 comparison memory (the paper's "ideal
//!   off-chip memory, faster by one order of magnitude than the SoC").
//! * [`Bus`] — an AXI4-crossbar-like address-routed interconnect.
//! * [`DmaEngine`] — the µDMA with 1D and 2D transfer descriptors.
//!
//! # Example
//!
//! ```
//! use hulkv_mem::{HyperRam, HyperRamConfig, MemoryDevice};
//!
//! let mut ram = HyperRam::new(HyperRamConfig::default());
//! let lat = ram.write(0x100, &[1, 2, 3, 4])?;
//! let mut buf = [0u8; 4];
//! ram.read(0x100, &mut buf)?;
//! assert_eq!(buf, [1, 2, 3, 4]);
//! assert!(lat.get() > 0); // DRAM accesses are never free
//! # Ok::<(), hulkv_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bridge;
mod bus;
mod cache;
mod ddr;
mod device;
mod dma;
mod hyperram;
mod llc;
mod sparse;
mod sram;

pub use bridge::ClockBridge;
pub use bus::Bus;
pub use cache::{Cache, CacheConfig, WritePolicy};
pub use ddr::{Ddr, DdrConfig};
pub use device::{shared, MemoryDevice, SharedMem};
pub use dma::{DmaEngine, Transfer1d, Transfer2d};
pub use hyperram::{HyperRam, HyperRamConfig};
pub use llc::{Llc, LlcConfig};
pub use sparse::SparseStorage;
pub use sram::Sram;
