//! The common memory-device trait.

use hulkv_sim::{Cycles, SharedTracer, SimError, Stats};
use std::cell::RefCell;
use std::rc::Rc;

/// A shared, interiorly mutable handle to a memory device.
///
/// The HULK-V simulator is single-threaded, so `Rc<RefCell<…>>` gives the
/// many-masters-one-slave topology of the AXI crossbar without locking.
pub type SharedMem = Rc<RefCell<dyn MemoryDevice>>;

/// Wraps a device into a [`SharedMem`] handle.
///
/// # Example
///
/// ```
/// use hulkv_mem::{shared, Sram, MemoryDevice};
///
/// let spm = shared(Sram::new("l2spm", 512 * 1024, hulkv_sim::Cycles::new(1)));
/// spm.borrow_mut().write(0, &[0xAB])?;
/// # Ok::<(), hulkv_sim::SimError>(())
/// ```
pub fn shared<T: MemoryDevice + 'static>(device: T) -> SharedMem {
    Rc::new(RefCell::new(device))
}

/// A byte-addressable memory device with access timing.
///
/// Every storage and interconnect block in the model implements this trait:
/// scratchpads, caches, DRAM controllers, and buses. An access both moves
/// data *and* reports the number of cycles it occupied the device, in the
/// device's own clock domain — callers sitting in a different domain convert
/// with [`ClockDomain::convert`](hulkv_sim::ClockDomain::convert).
///
/// The timing model is latency-additive: contention between masters is not
/// simulated cycle-by-cycle, which is accurate for the fork/join workloads
/// of the paper where host and cluster rarely contend for the same slave.
pub trait MemoryDevice: std::fmt::Debug {
    /// The device capacity in bytes. Offsets in `read`/`write` must satisfy
    /// `offset + buf.len() <= size_bytes()`.
    fn size_bytes(&self) -> u64;

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfRange`] if the access exceeds the device
    /// size, or a device-specific error.
    fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<Cycles, SimError>;

    /// Writes `data` starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfRange`] if the access exceeds the device
    /// size, or a device-specific error.
    fn write(&mut self, offset: u64, data: &[u8]) -> Result<Cycles, SimError>;

    /// Activity counters of this device.
    fn stats(&self) -> &Stats;

    /// Resets the activity counters (e.g. after a warm-up phase).
    fn reset_stats(&mut self);

    /// Attaches a structured SoC tracer to this device and everything it
    /// wraps. The default is a no-op: devices without trace-worthy events
    /// (plain SRAMs) ignore it, while caches, DRAM controllers and
    /// interconnects override it to record on their tracks and to propagate
    /// the handle downstream.
    fn attach_tracer(&mut self, tracer: SharedTracer) {
        let _ = tracer;
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`MemoryDevice::read`].
    fn read_u32(&mut self, offset: u64) -> Result<(u32, Cycles), SimError> {
        let mut b = [0u8; 4];
        let lat = self.read(offset, &mut b)?;
        Ok((u32::from_le_bytes(b), lat))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`MemoryDevice::read`].
    fn read_u64(&mut self, offset: u64) -> Result<(u64, Cycles), SimError> {
        let mut b = [0u8; 8];
        let lat = self.read(offset, &mut b)?;
        Ok((u64::from_le_bytes(b), lat))
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`MemoryDevice::write`].
    fn write_u32(&mut self, offset: u64, value: u32) -> Result<Cycles, SimError> {
        self.write(offset, &value.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`MemoryDevice::write`].
    fn write_u64(&mut self, offset: u64, value: u64) -> Result<Cycles, SimError> {
        self.write(offset, &value.to_le_bytes())
    }

    /// Side-effect-free read for debugger and observability backdoors: no
    /// latency is charged, no counter bumps, no LRU/claim/FIFO mutation.
    /// Caches overlay their resident lines over the backing store so the
    /// bytes match what [`MemoryDevice::read`] would return.
    ///
    /// # Errors
    ///
    /// [`SimError::Model`] on devices without a peekable image (default),
    /// or range/routing errors as for reads.
    fn peek(&self, offset: u64, buf: &mut [u8]) -> Result<(), SimError> {
        let _ = (offset, buf);
        Err(SimError::Model(
            "device has no side-effect-free peek".into(),
        ))
    }
}

/// Validates that `offset + len` stays within `size`, returning a
/// [`SimError::OutOfRange`] otherwise. Shared by device implementations.
pub(crate) fn check_range(offset: u64, len: usize, size: u64) -> Result<(), SimError> {
    let end = offset.checked_add(len as u64).ok_or(SimError::OutOfRange {
        what: "access end",
        value: offset,
        limit: size,
    })?;
    if end > size {
        return Err(SimError::OutOfRange {
            what: "access end",
            value: end,
            limit: size,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sram;

    #[test]
    fn word_helpers_round_trip() {
        let mut m = Sram::new("t", 64, Cycles::new(1));
        m.write_u32(0, 0xDEAD_BEEF).unwrap();
        m.write_u64(8, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(m.read_u32(0).unwrap().0, 0xDEAD_BEEF);
        assert_eq!(m.read_u64(8).unwrap().0, 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn check_range_rejects_overflow() {
        assert!(check_range(u64::MAX - 1, 4, u64::MAX).is_err());
        assert!(check_range(0, 4, 4).is_ok());
        assert!(check_range(1, 4, 4).is_err());
    }

    #[test]
    fn shared_handle_gives_interior_mutability() {
        let m = shared(Sram::new("s", 16, Cycles::new(1)));
        m.borrow_mut().write(0, &[7]).unwrap();
        let mut b = [0u8; 1];
        m.borrow_mut().read(0, &mut b).unwrap();
        assert_eq!(b[0], 7);
    }
}
