//! The µDMA engine with 1D and 2D transfer descriptors.

use crate::SharedMem;
use hulkv_sim::{Cycles, SharedTracer, SimError, Stats, TraceEvent, Track};

/// A 1D (contiguous) DMA transfer descriptor.
///
/// # Example
///
/// ```
/// use hulkv_mem::Transfer1d;
///
/// let t = Transfer1d { src: 0x0, dst: 0x1000, bytes: 256 };
/// assert_eq!(t.bytes, 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer1d {
    /// Source offset in the source device.
    pub src: u64,
    /// Destination offset in the destination device.
    pub dst: u64,
    /// Number of bytes to move.
    pub bytes: usize,
}

/// A 2D (strided) DMA transfer descriptor: `rows` rows of `row_bytes`, with
/// independent source and destination strides.
///
/// 2D transfers are the feature the paper calls "precious for efficiently
/// executing ML algorithms": they gather a tile of a larger tensor from DRAM
/// into a dense scratchpad buffer.
///
/// # Example
///
/// ```
/// use hulkv_mem::Transfer2d;
///
/// // Gather a 16x16 tile out of a 128-wide matrix.
/// let t = Transfer2d {
///     src: 0,
///     dst: 0,
///     row_bytes: 16,
///     rows: 16,
///     src_stride: 128,
///     dst_stride: 16,
/// };
/// assert_eq!(t.total_bytes(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer2d {
    /// Source offset of the first row.
    pub src: u64,
    /// Destination offset of the first row.
    pub dst: u64,
    /// Bytes per row.
    pub row_bytes: usize,
    /// Number of rows.
    pub rows: usize,
    /// Source stride between consecutive rows.
    pub src_stride: u64,
    /// Destination stride between consecutive rows.
    pub dst_stride: u64,
}

impl Transfer2d {
    /// Total payload moved.
    pub fn total_bytes(&self) -> usize {
        self.row_bytes * self.rows
    }
}

/// The µDMA engine.
///
/// Connects any two [`MemoryDevice`](crate::MemoryDevice)s (in HULK-V:
/// the L2SPM and the HyperRAM front-end, or the cluster L1SPM and the AXI
/// port). The engine is double-buffered in hardware, so the read and write
/// legs of a transfer overlap: the charged latency is the setup cost plus
/// the *maximum* of the two legs.
///
/// # Example
///
/// ```
/// use hulkv_mem::{shared, DmaEngine, MemoryDevice, Sram, Transfer1d};
/// use hulkv_sim::Cycles;
///
/// let src = shared(Sram::new("l2", 1024, Cycles::new(1)));
/// let dst = shared(Sram::new("l1", 1024, Cycles::new(1)));
/// src.borrow_mut().write(0, &[42; 64])?;
///
/// let mut dma = DmaEngine::new("udma", Cycles::new(10), 64);
/// dma.run_1d(&src, &dst, Transfer1d { src: 0, dst: 128, bytes: 64 })?;
///
/// let mut buf = [0u8; 64];
/// dst.borrow_mut().read(128, &mut buf)?;
/// assert_eq!(buf, [42; 64]);
/// # Ok::<(), hulkv_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct DmaEngine {
    setup: Cycles,
    beat_bytes: usize,
    stats: Stats,
    tracer: Option<SharedTracer>,
    track: Track,
}

impl DmaEngine {
    /// Creates an engine with a per-transfer `setup` cost (descriptor
    /// programming) moving data in beats of `beat_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `beat_bytes` is zero.
    pub fn new(name: impl Into<String>, setup: Cycles, beat_bytes: usize) -> Self {
        assert!(beat_bytes > 0, "beat size must be non-zero");
        DmaEngine {
            setup,
            beat_bytes,
            stats: Stats::new(name),
            tracer: None,
            track: Track::Dma,
        }
    }

    /// Attaches a structured SoC tracer; each transfer records a start
    /// instant and an end span (covering the overlapped latency) on `track`.
    pub fn set_tracer(&mut self, tracer: SharedTracer, track: Track) {
        self.tracer = Some(tracer);
        self.track = track;
    }

    fn trace_transfer(&self, src: u64, dst: u64, bytes: usize, latency: Cycles) {
        if let Some(t) = &self.tracer {
            let mut t = t.borrow_mut();
            t.record(
                self.track,
                TraceEvent::DmaStart {
                    src,
                    dst,
                    bytes: bytes as u64,
                },
            );
            t.record_span(
                self.track,
                TraceEvent::DmaEnd {
                    bytes: bytes as u64,
                },
                latency.get(),
            );
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the activity counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Serializes the engine's only mutable state — its activity counters.
    pub fn snapshot_json(&self) -> hulkv_sim::Json {
        hulkv_sim::snap::stats_to_json(&self.stats)
    }

    /// Restores counters written by [`DmaEngine::snapshot_json`].
    ///
    /// # Errors
    ///
    /// On a malformed section.
    pub fn restore_json(&mut self, j: &hulkv_sim::Json) -> hulkv_sim::SnapResult<()> {
        hulkv_sim::snap::restore_stats(&mut self.stats, j)
    }

    /// Moves one contiguous span, beat by beat, and returns the overlapped
    /// latency of the transfer (excluding setup, which the caller adds once).
    fn move_span(
        &mut self,
        src_dev: &SharedMem,
        dst_dev: &SharedMem,
        src: u64,
        dst: u64,
        bytes: usize,
    ) -> Result<(Cycles, Cycles), SimError> {
        let mut read_lat = Cycles::ZERO;
        let mut write_lat = Cycles::ZERO;
        let mut buf = vec![0u8; self.beat_bytes];
        let mut pos = 0usize;
        while pos < bytes {
            let n = self.beat_bytes.min(bytes - pos);
            read_lat += src_dev.borrow_mut().read(src + pos as u64, &mut buf[..n])?;
            write_lat += dst_dev.borrow_mut().write(dst + pos as u64, &buf[..n])?;
            pos += n;
        }
        Ok((read_lat, write_lat))
    }

    /// Executes a 1D transfer.
    ///
    /// # Errors
    ///
    /// Propagates device range errors; on error the destination may be
    /// partially written (as in hardware).
    pub fn run_1d(
        &mut self,
        src_dev: &SharedMem,
        dst_dev: &SharedMem,
        t: Transfer1d,
    ) -> Result<Cycles, SimError> {
        let (r, w) = self.move_span(src_dev, dst_dev, t.src, t.dst, t.bytes)?;
        self.stats.inc("transfers_1d");
        self.stats.add("bytes", t.bytes as u64);
        let lat = self.setup + r.max(w);
        self.trace_transfer(t.src, t.dst, t.bytes, lat);
        Ok(lat)
    }

    /// Executes a 2D (strided) transfer.
    ///
    /// # Errors
    ///
    /// Propagates device range errors; on error the destination may be
    /// partially written.
    pub fn run_2d(
        &mut self,
        src_dev: &SharedMem,
        dst_dev: &SharedMem,
        t: Transfer2d,
    ) -> Result<Cycles, SimError> {
        let mut read_lat = Cycles::ZERO;
        let mut write_lat = Cycles::ZERO;
        for row in 0..t.rows {
            let (r, w) = self.move_span(
                src_dev,
                dst_dev,
                t.src + row as u64 * t.src_stride,
                t.dst + row as u64 * t.dst_stride,
                t.row_bytes,
            )?;
            read_lat += r;
            write_lat += w;
        }
        self.stats.inc("transfers_2d");
        self.stats.add("bytes", t.total_bytes() as u64);
        let lat = self.setup + read_lat.max(write_lat);
        self.trace_transfer(t.src, t.dst, t.total_bytes(), lat);
        Ok(lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shared, Sram};

    fn pair() -> (SharedMem, SharedMem, DmaEngine) {
        let a = shared(Sram::new("a", 4096, Cycles::new(1)));
        let b = shared(Sram::new("b", 4096, Cycles::new(5)));
        (a, b, DmaEngine::new("dma", Cycles::new(8), 64))
    }

    #[test]
    fn copy_1d_matches_memcpy() {
        let (a, b, mut dma) = pair();
        let data: Vec<u8> = (0..200u8).collect();
        a.borrow_mut().write(16, &data).unwrap();
        dma.run_1d(
            &a,
            &b,
            Transfer1d {
                src: 16,
                dst: 300,
                bytes: 200,
            },
        )
        .unwrap();
        let mut out = vec![0u8; 200];
        b.borrow_mut().read(300, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn latency_overlaps_slower_leg() {
        let (a, b, mut dma) = pair();
        // 128 bytes = 2 beats; read leg 2*1, write leg 2*5; setup 8.
        let lat = dma
            .run_1d(
                &a,
                &b,
                Transfer1d {
                    src: 0,
                    dst: 0,
                    bytes: 128,
                },
            )
            .unwrap();
        assert_eq!(lat, Cycles::new(8 + 10));
    }

    #[test]
    fn gather_2d_tile() {
        let (a, b, mut dma) = pair();
        // Source: 4 rows of a 32-wide matrix; gather 8-byte rows.
        for row in 0..4u8 {
            a.borrow_mut()
                .write(row as u64 * 32, &[row + 1; 8])
                .unwrap();
        }
        dma.run_2d(
            &a,
            &b,
            Transfer2d {
                src: 0,
                dst: 0,
                row_bytes: 8,
                rows: 4,
                src_stride: 32,
                dst_stride: 8,
            },
        )
        .unwrap();
        let mut out = [0u8; 32];
        b.borrow_mut().read(0, &mut out).unwrap();
        for row in 0..4u8 {
            assert_eq!(&out[row as usize * 8..][..8], &[row + 1; 8]);
        }
    }

    #[test]
    fn scatter_2d() {
        let (a, b, mut dma) = pair();
        a.borrow_mut().write(0, &[9; 16]).unwrap();
        dma.run_2d(
            &a,
            &b,
            Transfer2d {
                src: 0,
                dst: 0,
                row_bytes: 4,
                rows: 4,
                src_stride: 4,
                dst_stride: 64,
            },
        )
        .unwrap();
        let mut probe = [0u8; 4];
        for row in 0..4 {
            b.borrow_mut().read(row * 64, &mut probe).unwrap();
            assert_eq!(probe, [9; 4]);
        }
    }

    #[test]
    fn stats_and_errors() {
        let (a, b, mut dma) = pair();
        dma.run_1d(
            &a,
            &b,
            Transfer1d {
                src: 0,
                dst: 0,
                bytes: 10,
            },
        )
        .unwrap();
        assert_eq!(dma.stats().get("transfers_1d"), 1);
        assert_eq!(dma.stats().get("bytes"), 10);
        let err = dma.run_1d(
            &a,
            &b,
            Transfer1d {
                src: 4090,
                dst: 0,
                bytes: 100,
            },
        );
        assert!(err.is_err());
        dma.reset_stats();
        assert_eq!(dma.stats().get("bytes"), 0);
    }
}
