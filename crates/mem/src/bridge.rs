//! Clock-domain bridge between memory devices.

use crate::{MemoryDevice, SharedMem};
use hulkv_sim::{convert_freq, Cycles, Freq, SimError, Stats};

/// Wraps a device living in another clock domain, converting its reported
/// latencies into the caller's domain (rounding up, like a synchronizer).
///
/// In HULK-V the CVA6 L1 caches run at the core clock (up to 900 MHz) while
/// the AXI crossbar, LLC and memory controller run in the 450 MHz SoC
/// domain; a `ClockBridge` sits exactly where the dual-clock FIFOs sit in
/// the RTL.
///
/// # Example
///
/// ```
/// use hulkv_mem::{shared, ClockBridge, MemoryDevice, Sram};
/// use hulkv_sim::{Cycles, Freq};
///
/// let slow = shared(Sram::new("soc_sram", 64, Cycles::new(4)));
/// let mut seen_from_core = ClockBridge::new(slow, Freq::mhz(450), Freq::mhz(900));
/// let mut b = [0u8; 4];
/// // 4 SoC cycles are 8 core cycles.
/// assert_eq!(seen_from_core.read(0, &mut b)?, Cycles::new(8));
/// # Ok::<(), hulkv_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct ClockBridge {
    inner: SharedMem,
    src: Freq,
    dst: Freq,
    stats: Stats,
}

impl ClockBridge {
    /// Bridges `inner` (whose latencies are in the `src` domain) into the
    /// `dst` domain.
    pub fn new(inner: SharedMem, src: Freq, dst: Freq) -> Self {
        ClockBridge {
            inner,
            src,
            dst,
            stats: Stats::new("clock_bridge"),
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> SharedMem {
        self.inner.clone()
    }
}

impl MemoryDevice for ClockBridge {
    fn size_bytes(&self) -> u64 {
        self.inner.borrow().size_bytes()
    }

    fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        let lat = self.inner.borrow_mut().read(offset, buf)?;
        Ok(convert_freq(lat, self.src, self.dst))
    }

    fn write(&mut self, offset: u64, data: &[u8]) -> Result<Cycles, SimError> {
        let lat = self.inner.borrow_mut().write(offset, data)?;
        Ok(convert_freq(lat, self.src, self.dst))
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn attach_tracer(&mut self, tracer: hulkv_sim::SharedTracer) {
        self.inner.borrow_mut().attach_tracer(tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shared, Sram};

    #[test]
    fn latency_converted_both_directions() {
        let dev = shared(Sram::new("m", 64, Cycles::new(10)));
        let mut up = ClockBridge::new(dev.clone(), Freq::mhz(450), Freq::mhz(900));
        let mut down = ClockBridge::new(dev, Freq::mhz(450), Freq::mhz(225));
        let mut b = [0u8; 4];
        assert_eq!(up.read(0, &mut b).unwrap(), Cycles::new(20));
        assert_eq!(down.read(0, &mut b).unwrap(), Cycles::new(5));
    }

    #[test]
    fn data_passes_through() {
        let dev = shared(Sram::new("m", 64, Cycles::new(1)));
        let mut bridge = ClockBridge::new(dev.clone(), Freq::mhz(100), Freq::mhz(300));
        bridge.write(8, &[1, 2, 3]).unwrap();
        let mut b = [0u8; 3];
        dev.borrow_mut().read(8, &mut b).unwrap();
        assert_eq!(b, [1, 2, 3]);
        assert_eq!(bridge.size_bytes(), 64);
    }
}
