//! Dense on-chip SRAM scratchpads.

use crate::device::check_range;
use crate::MemoryDevice;
use hulkv_sim::{Cycles, SimError, Stats};

/// An on-chip SRAM with a fixed access latency.
///
/// Models the 512 kB L2SPM of the host domain and any other dense on-chip
/// storage. Accesses of any size complete in the configured latency — the
/// SRAM macro is as wide as the interconnect, and wider software accesses
/// are already split by the requesting master (core or DMA).
///
/// # Example
///
/// ```
/// use hulkv_mem::{MemoryDevice, Sram};
/// use hulkv_sim::Cycles;
///
/// let mut l2 = Sram::new("l2spm", 512 * 1024, Cycles::new(1));
/// l2.write(0x40, b"hulk")?;
/// let mut buf = [0u8; 4];
/// assert_eq!(l2.read(0x40, &mut buf)?, Cycles::new(1));
/// assert_eq!(&buf, b"hulk");
/// # Ok::<(), hulkv_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sram {
    data: Vec<u8>,
    latency: Cycles,
    stats: Stats,
}

impl Sram {
    /// Creates a zero-initialized SRAM of `size` bytes with a uniform access
    /// `latency`.
    pub fn new(name: impl Into<String>, size: usize, latency: Cycles) -> Self {
        Sram {
            data: vec![0; size],
            latency,
            stats: Stats::new(name),
        }
    }

    /// Direct backdoor view of the contents (no timing, no stats). Used by
    /// loaders and test harnesses.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Direct mutable backdoor view of the contents (no timing, no stats).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// FNV-1a digest of the full contents (no timing, no stats). Used by
    /// the differential co-simulation driver to compare memory images
    /// between two runs in O(1) driver state.
    pub fn content_digest(&self) -> u64 {
        hulkv_sim::Fnv64::new().write(&self.data).finish()
    }

    /// Serializes contents (page-compact) and stats into `snap`. Reads
    /// nothing through [`MemoryDevice`], so taking a snapshot perturbs no
    /// counters.
    pub fn snapshot_into(&self, snap: &mut hulkv_sim::Snapshot) -> hulkv_sim::Json {
        use hulkv_sim::snap::stats_to_json;
        let contents = snap.push_pages(&self.data);
        hulkv_sim::Json::obj([
            ("contents", contents),
            ("stats", stats_to_json(&self.stats)),
        ])
    }

    /// Restores state written by [`Sram::snapshot_into`]. The SRAM must have
    /// been constructed with the same size.
    ///
    /// # Errors
    ///
    /// On size mismatch or a malformed section.
    pub fn restore_from(
        &mut self,
        snap: &hulkv_sim::Snapshot,
        j: &hulkv_sim::Json,
    ) -> hulkv_sim::SnapResult<()> {
        use hulkv_sim::snap::{get, restore_stats};
        snap.restore_pages(get(j, "contents")?, &mut self.data)?;
        restore_stats(&mut self.stats, get(j, "stats")?)
    }
}

impl MemoryDevice for Sram {
    fn size_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    fn peek(&self, offset: u64, buf: &mut [u8]) -> Result<(), SimError> {
        check_range(offset, buf.len(), self.size_bytes())?;
        let o = offset as usize;
        buf.copy_from_slice(&self.data[o..o + buf.len()]);
        Ok(())
    }

    fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        check_range(offset, buf.len(), self.size_bytes())?;
        let o = offset as usize;
        buf.copy_from_slice(&self.data[o..o + buf.len()]);
        self.stats.inc("reads");
        self.stats.add("bytes_read", buf.len() as u64);
        Ok(self.latency)
    }

    fn write(&mut self, offset: u64, data: &[u8]) -> Result<Cycles, SimError> {
        check_range(offset, data.len(), self.size_bytes())?;
        let o = offset as usize;
        self.data[o..o + data.len()].copy_from_slice(data);
        self.stats.inc("writes");
        self.stats.add("bytes_written", data.len() as u64);
        Ok(self.latency)
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut s = Sram::new("s", 128, Cycles::new(2));
        let lat = s.write(10, &[1, 2, 3]).unwrap();
        assert_eq!(lat, Cycles::new(2));
        let mut buf = [0u8; 3];
        s.read(10, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = Sram::new("s", 8, Cycles::new(1));
        assert!(s.write(6, &[0; 4]).is_err());
        let mut b = [0u8; 2];
        assert!(s.read(7, &mut b).is_err());
        // Boundary access is fine.
        assert!(s.read(6, &mut b).is_ok());
    }

    #[test]
    fn stats_track_traffic() {
        let mut s = Sram::new("s", 64, Cycles::new(1));
        s.write(0, &[0; 16]).unwrap();
        let mut b = [0u8; 8];
        s.read(0, &mut b).unwrap();
        s.read(8, &mut b).unwrap();
        assert_eq!(s.stats().get("writes"), 1);
        assert_eq!(s.stats().get("bytes_written"), 16);
        assert_eq!(s.stats().get("reads"), 2);
        assert_eq!(s.stats().get("bytes_read"), 16);
        s.reset_stats();
        assert_eq!(s.stats().get("reads"), 0);
    }

    #[test]
    fn backdoor_views() {
        let mut s = Sram::new("s", 4, Cycles::new(1));
        s.as_mut_slice()[3] = 0xFF;
        assert_eq!(s.as_slice()[3], 0xFF);
        assert_eq!(s.stats().get("writes"), 0);
    }

    #[test]
    fn zero_initialized() {
        let mut s = Sram::new("s", 32, Cycles::new(1));
        let mut b = [1u8; 32];
        s.read(0, &mut b).unwrap();
        assert!(b.iter().all(|&x| x == 0));
    }
}
