//! The HyperBUS controller and HyperRAM device model (§III-B of the paper).

use crate::device::check_range;
use crate::{MemoryDevice, SparseStorage};
use hulkv_sim::{convert_freq, Cycles, Freq, SharedTracer, SimError, Stats, TraceEvent, Track};

/// Configuration of the HyperRAM controller and the memories behind it.
///
/// The HyperBUS protocol is fully digital and counts `11 + n` pins: three
/// control pins, `n` chip selects, and eight double-data-rate data pins.
/// A transaction is a 3-cycle command/address phase, an access latency of a
/// few clock cycles (doubled in the worst "fixed 2× latency" case imposed by
/// refresh collisions), then data at 2 bytes per bus cycle (8 DDR pins).
///
/// Exposing a second HyperBUS interleaves two chips 16-bit-wise, doubling
/// bandwidth (up to 6.4 Gb/s) at double the pin count; the controller demuxes
/// multiple chips per bus through their chip selects, placing them
/// contiguously in the address map.
///
/// # Example
///
/// ```
/// use hulkv_mem::HyperRamConfig;
///
/// let cfg = HyperRamConfig::default();
/// assert_eq!(cfg.total_bytes(), 512 * 1024 * 1024); // 512 MB, as in Table I
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperRamConfig {
    /// Number of chip selects per bus.
    pub chips_per_bus: usize,
    /// Capacity of one HyperRAM chip (up to 64 MB per the datasheet).
    pub chip_bytes: u64,
    /// Whether a second HyperBUS is exposed (16-bit interleaving).
    pub dual_bus: bool,
    /// HyperBUS clock (up to 200 MHz; half the SoC clock in HULK-V).
    pub bus_freq: Freq,
    /// The clock domain the returned latencies are expressed in.
    pub soc_freq: Freq,
    /// Command/address phase length in bus cycles.
    pub ca_cycles: u64,
    /// Initial access latency in bus cycles (tACC).
    pub access_cycles: u64,
    /// Model the worst-case doubled initial latency.
    pub fixed_2x_latency: bool,
    /// Maximum burst before the controller must toggle CS (tCSM limit).
    pub max_burst_bytes: usize,
    /// Controller front-end overhead per AXI transaction, in SoC cycles.
    pub frontend_cycles: u64,
}

impl Default for HyperRamConfig {
    /// The HULK-V flagship configuration: 8 × 64 MB chips on one bus,
    /// 512 MB total, bus at half the 450 MHz SoC clock.
    fn default() -> Self {
        HyperRamConfig {
            chips_per_bus: 8,
            chip_bytes: 64 * 1024 * 1024,
            dual_bus: false,
            bus_freq: Freq::mhz(225),
            soc_freq: Freq::mhz(450),
            ca_cycles: 3,
            access_cycles: 6,
            fixed_2x_latency: true,
            max_burst_bytes: 128,
            frontend_cycles: 4,
        }
    }
}

impl HyperRamConfig {
    /// Total exposed capacity across all buses and chip selects.
    pub fn total_bytes(&self) -> u64 {
        let buses = if self.dual_bus { 2 } else { 1 };
        self.chips_per_bus as u64 * self.chip_bytes * buses
    }

    /// Data bytes transferred per bus cycle across all buses (8 DDR pins
    /// per bus ⇒ 2 B/cycle/bus).
    pub fn bytes_per_bus_cycle(&self) -> u64 {
        if self.dual_bus {
            4
        } else {
            2
        }
    }

    /// Peak bandwidth in bits per second.
    pub fn peak_bandwidth_bps(&self) -> u64 {
        self.bytes_per_bus_cycle() * 8 * self.bus_freq.hz()
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.chips_per_bus == 0 || self.chip_bytes == 0 || self.max_burst_bytes == 0 {
            return Err(SimError::InvalidConfig(
                "hyperram: chips, chip size and burst limit must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

/// The HyperRAM subsystem: fully digital controller plus the chips behind it.
///
/// Latencies are returned in **SoC cycles** (the controller front-end sits in
/// the SoC clock domain; the PHY runs at the bus clock and the model converts
/// exactly).
///
/// # Example
///
/// ```
/// use hulkv_mem::{HyperRam, HyperRamConfig, MemoryDevice};
///
/// let mut ram = HyperRam::new(HyperRamConfig::default());
/// // A 64-byte cache-line refill...
/// let mut line = [0u8; 64];
/// let lat = ram.read(0, &mut line)?;
/// // ...takes CA + 2*tACC at 225 MHz plus 32 bus cycles of data,
/// // all seen from 450 MHz, plus the controller front-end.
/// assert_eq!(lat.get(), 4 + 2 * (3 + 12 + 32));
/// # Ok::<(), hulkv_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct HyperRam {
    cfg: HyperRamConfig,
    storage: SparseStorage,
    stats: Stats,
    tracer: Option<SharedTracer>,
}

impl HyperRam {
    /// Creates the subsystem from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero sizes); use
    /// [`HyperRam::try_new`] to handle that as an error.
    pub fn new(cfg: HyperRamConfig) -> Self {
        Self::try_new(cfg).expect("invalid HyperRAM configuration")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate configurations.
    pub fn try_new(cfg: HyperRamConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        let storage = SparseStorage::new(cfg.total_bytes());
        Ok(HyperRam {
            cfg,
            storage,
            stats: Stats::new("hyperram"),
            tracer: None,
        })
    }

    /// Attaches a structured SoC tracer; each access records a burst span
    /// (covering the whole transaction latency) on the DRAM track.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    fn trace_burst(&self, addr: u64, bytes: usize, write: bool, lat: Cycles) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().record_span(
                Track::Dram,
                TraceEvent::DramBurst {
                    addr,
                    bytes: bytes as u32,
                    write,
                },
                lat.get(),
            );
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HyperRamConfig {
        &self.cfg
    }

    /// FNV-1a digest of the stored content (see
    /// [`SparseStorage::content_digest`]).
    pub fn content_digest(&self) -> u64 {
        self.storage.content_digest()
    }

    /// Serializes resident pages and stats into `snap`.
    pub fn snapshot_into(&self, snap: &mut hulkv_sim::Snapshot) -> hulkv_sim::Json {
        use hulkv_sim::snap::stats_to_json;
        let storage = self.storage.snapshot_into(snap);
        hulkv_sim::Json::obj([("storage", storage), ("stats", stats_to_json(&self.stats))])
    }

    /// Restores state written by [`HyperRam::snapshot_into`].
    ///
    /// # Errors
    ///
    /// On size mismatch or a malformed section.
    pub fn restore_from(
        &mut self,
        snap: &hulkv_sim::Snapshot,
        j: &hulkv_sim::Json,
    ) -> hulkv_sim::SnapResult<()> {
        use hulkv_sim::snap::{get, restore_stats};
        self.storage.restore_from(snap, get(j, "storage")?)?;
        restore_stats(&mut self.stats, get(j, "stats")?)
    }

    /// Initial latency of one burst, in bus cycles.
    fn initial_latency(&self) -> u64 {
        let acc = if self.cfg.fixed_2x_latency {
            2 * self.cfg.access_cycles
        } else {
            self.cfg.access_cycles
        };
        self.cfg.ca_cycles + acc
    }

    /// Timing of an access of `len` bytes starting at `offset`, in SoC
    /// cycles. Bursts are split at the tCSM limit and at chip boundaries.
    fn latency(&mut self, offset: u64, len: usize) -> Cycles {
        let bpc = self.cfg.bytes_per_bus_cycle();
        // Address span owned by one chip select. On a dual-bus setup the
        // pair of chips on the same CS forms one interleaved 2×-size block.
        let cs_span = if self.cfg.dual_bus {
            self.cfg.chip_bytes * 2
        } else {
            self.cfg.chip_bytes
        };
        let mut bus_cycles = 0u64;
        let mut bursts = 0u64;
        let mut pos = 0u64;
        while (pos as usize) < len {
            let addr = offset + pos;
            let to_cs_end = cs_span - (addr % cs_span);
            let n = (len as u64 - pos)
                .min(self.cfg.max_burst_bytes as u64)
                .min(to_cs_end);
            bus_cycles += self.initial_latency() + n.div_ceil(bpc);
            bursts += 1;
            pos += n;
        }
        self.stats.add("bursts", bursts);
        let phy = convert_freq(
            Cycles::new(bus_cycles),
            self.cfg.bus_freq,
            self.cfg.soc_freq,
        );
        phy + Cycles::new(self.cfg.frontend_cycles)
    }
}

impl MemoryDevice for HyperRam {
    fn size_bytes(&self) -> u64 {
        self.cfg.total_bytes()
    }

    fn peek(&self, offset: u64, buf: &mut [u8]) -> Result<(), SimError> {
        check_range(offset, buf.len(), self.size_bytes())?;
        self.storage.read(offset, buf);
        Ok(())
    }

    fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        check_range(offset, buf.len(), self.size_bytes())?;
        self.storage.read(offset, buf);
        self.stats.inc("reads");
        self.stats.add("bytes_read", buf.len() as u64);
        let lat = self.latency(offset, buf.len());
        self.stats.add("busy_cycles", lat.get());
        self.trace_burst(offset, buf.len(), false, lat);
        Ok(lat)
    }

    fn write(&mut self, offset: u64, data: &[u8]) -> Result<Cycles, SimError> {
        check_range(offset, data.len(), self.size_bytes())?;
        self.storage.write(offset, data);
        self.stats.inc("writes");
        self.stats.add("bytes_written", data.len() as u64);
        let lat = self.latency(offset, data.len());
        self.stats.add("busy_cycles", lat.get());
        self.trace_burst(offset, data.len(), true, lat);
        Ok(lat)
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn attach_tracer(&mut self, tracer: SharedTracer) {
        self.set_tracer(tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_flagship() {
        let cfg = HyperRamConfig::default();
        assert_eq!(cfg.total_bytes(), 512 << 20);
        // Latest HyperRAMs: 200 MHz, 3.2 Gbps. Our half-SoC bus: 225 MHz DDR.
        assert_eq!(cfg.peak_bandwidth_bps(), 2 * 8 * 225_000_000);
    }

    #[test]
    fn dual_bus_doubles_capacity_and_bandwidth() {
        let cfg = HyperRamConfig {
            dual_bus: true,
            bus_freq: Freq::mhz(200),
            ..HyperRamConfig::default()
        };
        assert_eq!(cfg.total_bytes(), 1024 << 20);
        // Paper: "doubling the pin count ... up to 6.4 Gbps".
        assert_eq!(cfg.peak_bandwidth_bps(), 6_400_000_000);
    }

    #[test]
    fn data_round_trip() {
        let mut ram = HyperRam::new(HyperRamConfig::default());
        let data: Vec<u8> = (0..255).collect();
        ram.write(1_000_000, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        ram.read(1_000_000, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn small_read_dominated_by_initial_latency() {
        let mut ram = HyperRam::new(HyperRamConfig::default());
        let mut b8 = [0u8; 8];
        let lat8 = ram.read(0, &mut b8).unwrap();
        // CA(3) + 2*tACC(12) + 4 data cycles = 19 bus cycles = 38 SoC + 4 fe.
        assert_eq!(lat8.get(), 42);
    }

    #[test]
    fn long_burst_amortizes_latency() {
        let mut ram = HyperRam::new(HyperRamConfig::default());
        let mut small = [0u8; 8];
        let mut big = [0u8; 128];
        let lat_small = ram.read(0, &mut small).unwrap();
        let lat_big = ram.read(0, &mut big).unwrap();
        let per_byte_small = lat_small.get() as f64 / 8.0;
        let per_byte_big = lat_big.get() as f64 / 128.0;
        assert!(per_byte_big < per_byte_small / 3.0);
    }

    #[test]
    fn burst_split_at_tcsm_limit() {
        let mut ram = HyperRam::new(HyperRamConfig::default());
        let mut buf = vec![0u8; 256]; // two 128-byte bursts
        ram.read(0, &mut buf).unwrap();
        assert_eq!(ram.stats().get("bursts"), 2);
    }

    #[test]
    fn burst_split_at_chip_boundary() {
        let cfg = HyperRamConfig {
            chips_per_bus: 2,
            chip_bytes: 1024,
            ..HyperRamConfig::default()
        };
        let mut ram = HyperRam::new(cfg);
        let mut buf = [0u8; 64];
        ram.read(1024 - 32, &mut buf).unwrap(); // straddles CS0/CS1
        assert_eq!(ram.stats().get("bursts"), 2);
    }

    #[test]
    fn chip_boundary_crossing_pays_per_segment_latency() {
        // A burst straddling a CS-decode boundary is two HyperBUS
        // transactions: the controller must deassert CS, so the second
        // segment re-pays the full command/address + row (tACC) latency.
        let cfg = HyperRamConfig {
            chips_per_bus: 2,
            chip_bytes: 1024,
            ..HyperRamConfig::default()
        };
        let mut ram = HyperRam::new(cfg.clone());
        let mut buf = [0u8; 64];
        let crossing = ram.read(1024 - 32, &mut buf).unwrap();
        let flat = ram.read(0, &mut buf).unwrap();
        // Identical length and data cycles; the crossing burst differs by
        // exactly one extra initial latency, seen from the SoC domain.
        let init_soc = convert_freq(
            Cycles::new(ram.initial_latency()),
            cfg.bus_freq,
            cfg.soc_freq,
        );
        assert_eq!(crossing.get() - flat.get(), init_soc.get());
        // Timing identity: the crossing burst costs the same as issuing its
        // two segments as separate transactions, minus the one duplicated
        // controller front-end.
        let mut half = [0u8; 32];
        let seg0 = ram.read(1024 - 32, &mut half).unwrap();
        let seg1 = ram.read(1024, &mut half).unwrap();
        assert_eq!(
            crossing + Cycles::new(cfg.frontend_cycles),
            seg0 + seg1,
            "crossing burst must decompose into per-segment transactions"
        );
    }

    #[test]
    fn chip_boundary_and_tcsm_splits_compose() {
        // 160 bytes starting 32 before a CS boundary: segment 1 is capped
        // by the boundary (32 B), segment 2 by the tCSM limit (128 B).
        let cfg = HyperRamConfig {
            chips_per_bus: 4,
            chip_bytes: 1024,
            ..HyperRamConfig::default()
        };
        let mut ram = HyperRam::new(cfg.clone());
        let mut buf = [0u8; 160];
        let lat = ram.read(1024 - 32, &mut buf).unwrap();
        assert_eq!(ram.stats().get("bursts"), 2);
        // 2 × init + (16 + 64) data bus cycles, doubled into the SoC
        // domain, plus one front-end.
        let bus = 2 * ram.initial_latency() + 16 + 64;
        assert_eq!(lat.get(), 2 * bus + cfg.frontend_cycles);
    }

    #[test]
    fn dual_bus_halves_data_cycles() {
        let single = HyperRamConfig::default();
        let dual = HyperRamConfig {
            dual_bus: true,
            ..HyperRamConfig::default()
        };
        let mut r1 = HyperRam::new(single);
        let mut r2 = HyperRam::new(dual);
        let mut buf = vec![0u8; 128];
        let l1 = r1.read(0, &mut buf).unwrap();
        let l2 = r2.read(0, &mut buf).unwrap();
        assert!(l2 < l1);
        // Data phase halves: 64 vs 32 bus cycles; initial latency unchanged.
        assert_eq!(l1.get() - l2.get(), 2 * 32);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut ram = HyperRam::new(HyperRamConfig::default());
        let total = ram.size_bytes();
        assert!(ram.write(total - 2, &[0; 4]).is_err());
    }

    #[test]
    fn relaxed_latency_configuration() {
        let cfg = HyperRamConfig {
            fixed_2x_latency: false,
            ..HyperRamConfig::default()
        };
        let mut ram = HyperRam::new(cfg);
        let mut b = [0u8; 8];
        // CA(3) + tACC(6) + 4 = 13 bus cycles = 26 SoC + 4.
        assert_eq!(ram.read(0, &mut b).unwrap().get(), 30);
    }
}
