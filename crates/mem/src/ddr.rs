//! The DDR4/LPDDR4 comparison memory.

use crate::device::check_range;
use crate::{MemoryDevice, SparseStorage};
use hulkv_sim::{Cycles, SharedTracer, SimError, Stats, TraceEvent, Track};

/// Configuration of the DDR4/LPDDR4 model.
///
/// In the paper's FPGA benchmarking setup the proprietary Xilinx DDR4
/// controller runs its PHY at 1.2 GHz while the SoC runs at 50 MHz — "the
/// DDR4 models an ideal off-chip memory, faster by one order of magnitude
/// than the SoC". We reproduce that: a fixed controller latency and a data
/// rate that saturates the 64-bit AXI port (8 bytes per SoC cycle).
///
/// # Example
///
/// ```
/// use hulkv_mem::DdrConfig;
///
/// let cfg = DdrConfig::default();
/// assert_eq!(cfg.bytes_per_cycle, 8); // saturates the 64-bit AXI
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdrConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Fixed per-transaction latency in SoC cycles (controller + CAS).
    pub latency_cycles: u64,
    /// Streaming data rate in bytes per SoC cycle.
    pub bytes_per_cycle: u64,
}

impl Default for DdrConfig {
    /// 512 MB (matched to the HyperRAM capacity for apples-to-apples
    /// comparisons), 10-cycle latency, full AXI-width streaming.
    fn default() -> Self {
        DdrConfig {
            size_bytes: 512 * 1024 * 1024,
            latency_cycles: 10,
            bytes_per_cycle: 8,
        }
    }
}

/// The DDR4/LPDDR4 main-memory model used as the power-hungry baseline in
/// Figures 7–9.
///
/// Latencies are in SoC cycles.
///
/// # Example
///
/// ```
/// use hulkv_mem::{Ddr, DdrConfig, MemoryDevice};
///
/// let mut ddr = Ddr::new(DdrConfig::default());
/// let mut line = [0u8; 64];
/// let lat = ddr.read(0, &mut line)?;
/// assert_eq!(lat.get(), 10 + 64 / 8);
/// # Ok::<(), hulkv_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Ddr {
    cfg: DdrConfig,
    storage: SparseStorage,
    stats: Stats,
    tracer: Option<SharedTracer>,
}

impl Ddr {
    /// Creates the DDR model.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` or `size_bytes` is zero.
    pub fn new(cfg: DdrConfig) -> Self {
        assert!(
            cfg.bytes_per_cycle > 0 && cfg.size_bytes > 0,
            "invalid DDR configuration"
        );
        Ddr {
            storage: SparseStorage::new(cfg.size_bytes),
            cfg,
            stats: Stats::new("ddr"),
            tracer: None,
        }
    }

    /// Attaches a structured SoC tracer; each access records a burst span
    /// (covering the whole transaction latency) on the DRAM track.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    fn trace_burst(&self, addr: u64, bytes: usize, write: bool, lat: Cycles) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().record_span(
                Track::Dram,
                TraceEvent::DramBurst {
                    addr,
                    bytes: bytes as u32,
                    write,
                },
                lat.get(),
            );
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DdrConfig {
        &self.cfg
    }

    /// FNV-1a digest of the stored content (see
    /// [`SparseStorage::content_digest`]).
    pub fn content_digest(&self) -> u64 {
        self.storage.content_digest()
    }

    /// Serializes resident pages and stats into `snap`.
    pub fn snapshot_into(&self, snap: &mut hulkv_sim::Snapshot) -> hulkv_sim::Json {
        use hulkv_sim::snap::stats_to_json;
        let storage = self.storage.snapshot_into(snap);
        hulkv_sim::Json::obj([("storage", storage), ("stats", stats_to_json(&self.stats))])
    }

    /// Restores state written by [`Ddr::snapshot_into`].
    ///
    /// # Errors
    ///
    /// On size mismatch or a malformed section.
    pub fn restore_from(
        &mut self,
        snap: &hulkv_sim::Snapshot,
        j: &hulkv_sim::Json,
    ) -> hulkv_sim::SnapResult<()> {
        use hulkv_sim::snap::{get, restore_stats};
        self.storage.restore_from(snap, get(j, "storage")?)?;
        restore_stats(&mut self.stats, get(j, "stats")?)
    }

    fn latency(&self, len: usize) -> Cycles {
        Cycles::new(self.cfg.latency_cycles + (len as u64).div_ceil(self.cfg.bytes_per_cycle))
    }
}

impl MemoryDevice for Ddr {
    fn size_bytes(&self) -> u64 {
        self.cfg.size_bytes
    }

    fn peek(&self, offset: u64, buf: &mut [u8]) -> Result<(), SimError> {
        check_range(offset, buf.len(), self.size_bytes())?;
        self.storage.read(offset, buf);
        Ok(())
    }

    fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        check_range(offset, buf.len(), self.size_bytes())?;
        self.storage.read(offset, buf);
        self.stats.inc("reads");
        self.stats.add("bytes_read", buf.len() as u64);
        let lat = self.latency(buf.len());
        self.stats.add("busy_cycles", lat.get());
        self.trace_burst(offset, buf.len(), false, lat);
        Ok(lat)
    }

    fn write(&mut self, offset: u64, data: &[u8]) -> Result<Cycles, SimError> {
        check_range(offset, data.len(), self.size_bytes())?;
        self.storage.write(offset, data);
        self.stats.inc("writes");
        self.stats.add("bytes_written", data.len() as u64);
        let lat = self.latency(data.len());
        self.stats.add("busy_cycles", lat.get());
        self.trace_burst(offset, data.len(), true, lat);
        Ok(lat)
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn attach_tracer(&mut self, tracer: SharedTracer) {
        self.set_tracer(tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HyperRam, HyperRamConfig};

    #[test]
    fn data_round_trip() {
        let mut ddr = Ddr::new(DdrConfig::default());
        ddr.write(0xABC, &[1, 2, 3]).unwrap();
        let mut b = [0u8; 3];
        ddr.read(0xABC, &mut b).unwrap();
        assert_eq!(b, [1, 2, 3]);
    }

    #[test]
    fn latency_formula() {
        let mut ddr = Ddr::new(DdrConfig::default());
        let mut b = [0u8; 1];
        assert_eq!(ddr.read(0, &mut b).unwrap().get(), 11);
        let mut line = [0u8; 64];
        assert_eq!(ddr.read(0, &mut line).unwrap().get(), 18);
    }

    #[test]
    fn ddr_is_an_order_of_magnitude_faster_than_hyperram() {
        // The core premise of Figures 7-9: DDR4 is far faster per line
        // refill, HyperRAM compensates with the LLC.
        let mut ddr = Ddr::new(DdrConfig::default());
        let mut hyper = HyperRam::new(HyperRamConfig::default());
        let mut line = [0u8; 64];
        let d = ddr.read(0, &mut line).unwrap();
        let h = hyper.read(0, &mut line).unwrap();
        assert!(h.get() >= 5 * d.get(), "hyper {h} vs ddr {d}");
    }

    #[test]
    fn out_of_range_rejected() {
        let mut ddr = Ddr::new(DdrConfig {
            size_bytes: 64,
            ..DdrConfig::default()
        });
        assert!(ddr.write(63, &[0, 0]).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut ddr = Ddr::new(DdrConfig::default());
        ddr.write(0, &[0; 32]).unwrap();
        let mut b = [0u8; 16];
        ddr.read(0, &mut b).unwrap();
        assert_eq!(ddr.stats().get("bytes_written"), 32);
        assert_eq!(ddr.stats().get("bytes_read"), 16);
    }
}
