//! A generic set-associative cache with LRU replacement.

use crate::device::check_range;
use crate::{MemoryDevice, SharedMem};
use hulkv_sim::{Cycles, SharedTracer, SimError, Stats, StatsHandle, TraceEvent, Track};

/// Write-handling policy of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Dirty lines are written back on eviction (used by the LLC).
    WriteBack,
    /// Every write is propagated to the backing store (used by the CVA6 L1
    /// data cache, which is write-through "to enable simple coherency with
    /// other masters").
    WriteThrough,
}

/// Static configuration of a [`Cache`].
///
/// # Example
///
/// ```
/// use hulkv_mem::{CacheConfig, WritePolicy};
///
/// // The CVA6 32 kB L1 data cache: 8 ways, 64-byte lines.
/// let cfg = CacheConfig {
///     name: "l1d".into(),
///     ways: 8,
///     sets: 64,
///     line_bytes: 64,
///     hit_latency: hulkv_sim::Cycles::new(1),
///     write_policy: WritePolicy::WriteThrough,
///     write_allocate: false,
///     write_buffer: true,
/// };
/// assert_eq!(cfg.size_bytes(), 32 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name, used in statistics.
    pub name: String,
    /// Associativity.
    pub ways: usize,
    /// Number of sets.
    pub sets: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
    /// Latency charged on a hit.
    pub hit_latency: Cycles,
    /// Write-back or write-through behaviour.
    pub write_policy: WritePolicy,
    /// Whether a write miss allocates a line (`true` for write-back caches,
    /// typically `false` for write-through ones).
    pub write_allocate: bool,
    /// Whether a store buffer hides the latency of write-through traffic.
    /// Data still propagates immediately; only the charged latency changes.
    pub write_buffer: bool,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.ways * self.sets * self.line_bytes) as u64
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.ways == 0 || self.sets == 0 || self.line_bytes == 0 {
            return Err(SimError::InvalidConfig(format!(
                "cache {}: ways/sets/line_bytes must be non-zero",
                self.name
            )));
        }
        if !self.line_bytes.is_power_of_two() || !self.sets.is_power_of_two() {
            return Err(SimError::InvalidConfig(format!(
                "cache {}: line_bytes and sets must be powers of two",
                self.name
            )));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
    data: Vec<u8>,
}

/// A set-associative cache with true data storage, LRU replacement and
/// configurable write policy, in front of a shared backing device.
///
/// The same engine models the CVA6 L1 instruction and data caches and the
/// 128 kB last-level cache; only the [`CacheConfig`] differs. Latencies
/// returned by accesses include backing-store time on misses and (for
/// unbuffered write-through) on writes, all in the cache's own clock domain
/// (backing devices in other domains must be wrapped by an adapter that
/// converts — in HULK-V all blocks on the host AXI share the SoC domain).
///
/// # Example
///
/// ```
/// use hulkv_mem::{shared, Cache, CacheConfig, MemoryDevice, Sram, WritePolicy};
/// use hulkv_sim::Cycles;
///
/// let dram = shared(Sram::new("dram", 4096, Cycles::new(100)));
/// let cfg = CacheConfig {
///     name: "llc".into(),
///     ways: 2,
///     sets: 4,
///     line_bytes: 16,
///     hit_latency: Cycles::new(1),
///     write_policy: WritePolicy::WriteBack,
///     write_allocate: true,
///     write_buffer: false,
/// };
/// let mut c = Cache::new(cfg, dram)?;
/// let mut buf = [0u8; 4];
/// let cold = c.read(0, &mut buf)?; // miss: goes to DRAM
/// let warm = c.read(4, &mut buf)?; // hit: same line
/// assert!(cold > warm);
/// # Ok::<(), hulkv_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    backing: SharedMem,
    stats: Stats,
    tick: u64,
    /// Bumped whenever resident contents may change (refill or flush).
    /// Fetch fast paths cache decoded instructions against this value.
    epoch: u64,
    /// `log2(line_bytes)` / `log2(sets)`, so the per-access address split
    /// is two shifts instead of two integer divisions.
    line_shift: u32,
    set_shift: u32,
    /// Pre-registered handles for the per-access counters, so the hot
    /// lookup paths bump an array slot instead of searching by key.
    h_hits: StatsHandle,
    h_misses: StatsHandle,
    h_bytes_read: StatsHandle,
    h_bytes_written: StatsHandle,
    tracer: Option<SharedTracer>,
    track: Track,
}

impl Cache {
    /// Creates a cache over `backing`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate geometries.
    pub fn new(cfg: CacheConfig, backing: SharedMem) -> Result<Self, SimError> {
        cfg.validate()?;
        let lines = vec![
            Line {
                valid: false,
                dirty: false,
                tag: 0,
                lru: 0,
                data: vec![0; cfg.line_bytes],
            };
            cfg.ways * cfg.sets
        ];
        let mut stats = Stats::new(cfg.name.clone());
        let h_hits = stats.handle("hits");
        let h_misses = stats.handle("misses");
        let h_bytes_read = stats.handle("bytes_read");
        let h_bytes_written = stats.handle("bytes_written");
        let line_shift = cfg.line_bytes.trailing_zeros();
        let set_shift = cfg.sets.trailing_zeros();
        Ok(Cache {
            cfg,
            lines,
            backing,
            stats,
            tick: 0,
            epoch: 0,
            line_shift,
            set_shift,
            h_hits,
            h_misses,
            h_bytes_read,
            h_bytes_written,
            tracer: None,
            track: Track::Llc,
        })
    }

    /// Attaches a structured SoC tracer; hits, misses and evictions are
    /// recorded on `track`.
    pub fn set_tracer(&mut self, tracer: SharedTracer, track: Track) {
        self.tracer = Some(tracer);
        self.track = track;
    }

    #[inline]
    fn trace(&self, event: TraceEvent) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().record(self.track, event);
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Content-stability epoch: changes whenever a refill or flush may have
    /// altered which bytes a resident address returns. A decoded-instruction
    /// cache entry recorded under one epoch may only be replayed while the
    /// epoch is unchanged (conservative: any refill invalidates).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Revalidates a fetch that previously hit: if the whole `len`-byte
    /// access lies inside one resident line, performs exactly the read-hit
    /// side effects (`hits` counter, hit trace event, LRU touch,
    /// `bytes_read`) and returns `true`. Otherwise performs **no** side
    /// effects and returns `false`, and the caller must issue the real
    /// [`MemoryDevice::read`]. This keeps statistics, traces and LRU state
    /// bit-identical to the slow path for replayed zero-latency fetches.
    #[inline]
    pub fn probe_fetch(&mut self, addr: u64, len: usize) -> bool {
        let in_line = (addr & (self.cfg.line_bytes as u64 - 1)) as usize;
        if in_line + len > self.cfg.line_bytes {
            return false; // straddles a line boundary: take the slow path
        }
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let Some(idx) = self.lookup(set, tag) else {
            return false;
        };
        self.stats.bump(self.h_hits, 1);
        self.trace(TraceEvent::CacheHit { addr, write: false });
        self.touch(idx);
        self.stats.bump(self.h_bytes_read, len as u64);
        true
    }

    /// Fraction of accesses that missed, `misses / (hits + misses)`.
    pub fn miss_ratio(&self) -> f64 {
        self.stats.ratio("misses", "hits")
    }

    /// Invalidates every line, writing dirty lines back first.
    ///
    /// # Errors
    ///
    /// Propagates backing-store errors from write-backs.
    pub fn flush(&mut self) -> Result<Cycles, SimError> {
        self.epoch += 1;
        let mut total = Cycles::ZERO;
        let (sets, line_bytes) = (self.cfg.sets, self.cfg.line_bytes);
        for idx in 0..self.lines.len() {
            if self.lines[idx].valid && self.lines[idx].dirty {
                let set = idx / self.cfg.ways;
                let addr = (self.lines[idx].tag * sets as u64 + set as u64) * line_bytes as u64;
                let data = self.lines[idx].data.clone();
                total += self.backing.borrow_mut().write(addr, &data)?;
                self.stats.inc("writebacks");
                self.trace(TraceEvent::CacheEvict { addr, dirty: true });
            }
            self.lines[idx].valid = false;
            self.lines[idx].dirty = false;
        }
        Ok(total)
    }

    /// FNV-1a digest of the microarchitectural state: every line's
    /// valid/dirty/tag/LRU/data plus the LRU tick and content epoch. Two
    /// identically-driven caches agree on this digest; it is the cache-side
    /// complement of `Core::state_digest`.
    pub fn state_digest(&self) -> u64 {
        let mut h = hulkv_sim::Fnv64::new();
        for l in &self.lines {
            h.write_u64(u64::from(l.valid) | u64::from(l.dirty) << 1)
                .write_u64(l.tag)
                .write_u64(l.lru)
                .write(&l.data);
        }
        h.write_u64(self.tick).write_u64(self.epoch);
        h.finish()
    }

    /// Serializes lines (packed binary), LRU tick, epoch and stats into
    /// `snap`. Contents are recorded rather than flushed: flushing would
    /// bump the epoch and change miss timing, making snapshotting visible
    /// to the simulated run.
    pub fn snapshot_into(&self, snap: &mut hulkv_sim::Snapshot) -> hulkv_sim::Json {
        use hulkv_sim::snap::{hex, stats_to_json};
        let mut packed = Vec::with_capacity(self.lines.len() * (17 + self.cfg.line_bytes));
        for l in &self.lines {
            packed.push(u8::from(l.valid) | u8::from(l.dirty) << 1);
            packed.extend_from_slice(&l.tag.to_le_bytes());
            packed.extend_from_slice(&l.lru.to_le_bytes());
            packed.extend_from_slice(&l.data);
        }
        let lines = snap.push_blob(&packed);
        hulkv_sim::Json::obj([
            ("ways", hex(self.cfg.ways as u64)),
            ("sets", hex(self.cfg.sets as u64)),
            ("line_bytes", hex(self.cfg.line_bytes as u64)),
            ("tick", hex(self.tick)),
            ("epoch", hex(self.epoch)),
            ("lines", lines),
            ("stats", stats_to_json(&self.stats)),
        ])
    }

    /// Restores state written by [`Cache::snapshot_into`] into a cache of
    /// identical geometry (pre-registered [`StatsHandle`]s stay valid).
    ///
    /// # Errors
    ///
    /// On geometry mismatch or a malformed section.
    pub fn restore_from(
        &mut self,
        snap: &hulkv_sim::Snapshot,
        j: &hulkv_sim::Json,
    ) -> hulkv_sim::SnapResult<()> {
        use hulkv_sim::snap::{get, get_u64, restore_stats, SnapError};
        let (ways, sets, lb) = (
            get_u64(j, "ways")? as usize,
            get_u64(j, "sets")? as usize,
            get_u64(j, "line_bytes")? as usize,
        );
        if (ways, sets, lb) != (self.cfg.ways, self.cfg.sets, self.cfg.line_bytes) {
            return Err(SnapError::msg(format!(
                "cache {}: geometry mismatch (snapshot {ways}x{sets}x{lb}, \
                 target {}x{}x{})",
                self.cfg.name, self.cfg.ways, self.cfg.sets, self.cfg.line_bytes
            )));
        }
        let packed = snap.blob(get(j, "lines")?)?;
        let rec = 17 + lb;
        if packed.len() != self.lines.len() * rec {
            return Err(SnapError::msg(format!(
                "cache {}: line blob is {} bytes, expected {}",
                self.cfg.name,
                packed.len(),
                self.lines.len() * rec
            )));
        }
        for (l, r) in self.lines.iter_mut().zip(packed.chunks_exact(rec)) {
            l.valid = r[0] & 1 != 0;
            l.dirty = r[0] & 2 != 0;
            l.tag = u64::from_le_bytes(r[1..9].try_into().expect("8 bytes"));
            l.lru = u64::from_le_bytes(r[9..17].try_into().expect("8 bytes"));
            l.data.copy_from_slice(&r[17..]);
        }
        self.tick = get_u64(j, "tick")?;
        self.epoch = get_u64(j, "epoch")?;
        restore_stats(&mut self.stats, get(j, "stats")?)
    }

    /// Side-effect-free read: resident lines overlay the backing store, so
    /// the bytes match what [`MemoryDevice::read`] would return — including
    /// dirty write-back data not yet propagated — without touching LRU
    /// state, counters or the backing device's counters.
    ///
    /// # Errors
    ///
    /// Propagates backing peek errors.
    pub fn peek(&self, addr: u64, buf: &mut [u8]) -> Result<(), SimError> {
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr + pos as u64;
            let in_line = (a & (self.cfg.line_bytes as u64 - 1)) as usize;
            let n = (self.cfg.line_bytes - in_line).min(buf.len() - pos);
            let set = self.set_of(a);
            let tag = self.tag_of(a);
            match self.lookup(set, tag) {
                Some(idx) => {
                    buf[pos..pos + n].copy_from_slice(&self.lines[idx].data[in_line..in_line + n])
                }
                None => self.backing.borrow().peek(a, &mut buf[pos..pos + n])?,
            }
            pos += n;
        }
        Ok(())
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) as usize) & (self.cfg.sets - 1)
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr >> (self.line_shift + self.set_shift)
    }

    fn line_base(&self, tag: u64, set: usize) -> u64 {
        ((tag << self.set_shift) + set as u64) << self.line_shift
    }

    /// Finds the way holding `(tag, set)`, if present.
    #[inline]
    fn lookup(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.cfg.ways;
        self.lines[base..base + self.cfg.ways]
            .iter()
            .position(|l| l.valid && l.tag == tag)
            .map(|w| base + w)
    }

    /// Picks a victim way in `set`: an invalid way if any, else the LRU one.
    fn victim(&self, set: usize) -> usize {
        let base = set * self.cfg.ways;
        for w in 0..self.cfg.ways {
            if !self.lines[base + w].valid {
                return base + w;
            }
        }
        (0..self.cfg.ways)
            .min_by_key(|&w| self.lines[base + w].lru)
            .map(|w| base + w)
            .expect("cache has at least one way")
    }

    fn touch(&mut self, idx: usize) {
        self.tick += 1;
        self.lines[idx].lru = self.tick;
    }

    /// Ensures the line containing `addr` is resident; returns
    /// `(line_index, fill_latency)`.
    fn ensure_line(&mut self, addr: u64, is_write: bool) -> Result<(usize, Cycles), SimError> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        if let Some(idx) = self.lookup(set, tag) {
            self.stats.bump(self.h_hits, 1);
            self.trace(TraceEvent::CacheHit {
                addr,
                write: is_write,
            });
            self.touch(idx);
            return Ok((idx, Cycles::ZERO));
        }
        self.stats.bump(self.h_misses, 1);
        self.trace(TraceEvent::CacheMiss {
            addr,
            write: is_write,
        });
        let mut lat = Cycles::ZERO;
        let idx = self.victim(set);
        if self.lines[idx].valid && self.lines[idx].dirty {
            let victim_addr = self.line_base(self.lines[idx].tag, set);
            let data = self.lines[idx].data.clone();
            lat += self.backing.borrow_mut().write(victim_addr, &data)?;
            self.stats.inc("writebacks");
            self.trace(TraceEvent::CacheEvict {
                addr: victim_addr,
                dirty: true,
            });
        }
        let line_addr = self.line_base(tag, set);
        let mut data = std::mem::take(&mut self.lines[idx].data);
        lat += self.backing.borrow_mut().read(line_addr, &mut data)?;
        self.stats.inc("refills");
        self.epoch += 1;
        self.lines[idx] = Line {
            valid: true,
            dirty: false,
            tag,
            lru: 0,
            data,
        };
        self.touch(idx);
        Ok((idx, lat))
    }
}

impl MemoryDevice for Cache {
    fn size_bytes(&self) -> u64 {
        self.backing.borrow().size_bytes()
    }

    fn peek(&self, offset: u64, buf: &mut [u8]) -> Result<(), SimError> {
        check_range(offset, buf.len(), self.size_bytes())?;
        Cache::peek(self, offset, buf)
    }

    fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        check_range(offset, buf.len(), self.size_bytes())?;
        let mut total = Cycles::ZERO;
        let mut pos = 0usize;
        while pos < buf.len() {
            let addr = offset + pos as u64;
            let in_line = (addr & (self.cfg.line_bytes as u64 - 1)) as usize;
            let n = (self.cfg.line_bytes - in_line).min(buf.len() - pos);
            let (idx, fill) = self.ensure_line(addr, false)?;
            buf[pos..pos + n].copy_from_slice(&self.lines[idx].data[in_line..in_line + n]);
            total += self.cfg.hit_latency + fill;
            pos += n;
        }
        self.stats.bump(self.h_bytes_read, buf.len() as u64);
        Ok(total)
    }

    fn write(&mut self, offset: u64, data: &[u8]) -> Result<Cycles, SimError> {
        check_range(offset, data.len(), self.size_bytes())?;
        let mut total = Cycles::ZERO;
        let mut pos = 0usize;
        while pos < data.len() {
            let addr = offset + pos as u64;
            let set = self.set_of(addr);
            let tag = self.tag_of(addr);
            let in_line = (addr & (self.cfg.line_bytes as u64 - 1)) as usize;
            let n = (self.cfg.line_bytes - in_line).min(data.len() - pos);
            let chunk = &data[pos..pos + n];

            let idx = match self.lookup(set, tag) {
                Some(idx) => {
                    self.stats.bump(self.h_hits, 1);
                    self.trace(TraceEvent::CacheHit { addr, write: true });
                    self.touch(idx);
                    Some(idx)
                }
                // ensure_line re-runs the (missing) lookup and counts the miss.
                None if self.cfg.write_allocate => {
                    let (idx, fill) = self.ensure_line(addr, true)?;
                    total += fill;
                    Some(idx)
                }
                None => {
                    self.stats.bump(self.h_misses, 1);
                    self.trace(TraceEvent::CacheMiss { addr, write: true });
                    None
                }
            };

            if let Some(idx) = idx {
                self.lines[idx].data[in_line..in_line + n].copy_from_slice(chunk);
                match self.cfg.write_policy {
                    WritePolicy::WriteBack => self.lines[idx].dirty = true,
                    WritePolicy::WriteThrough => {
                        let lat = self.backing.borrow_mut().write(addr, chunk)?;
                        if !self.cfg.write_buffer {
                            total += lat;
                        }
                        self.stats.inc("writethroughs");
                    }
                }
            } else {
                // Non-allocating write miss: straight to backing.
                let lat = self.backing.borrow_mut().write(addr, chunk)?;
                if !self.cfg.write_buffer {
                    total += lat;
                }
                self.stats.inc("write_misses_direct");
            }
            total += self.cfg.hit_latency;
            pos += n;
        }
        self.stats.bump(self.h_bytes_written, data.len() as u64);
        Ok(total)
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shared, Sram};

    fn test_cache(policy: WritePolicy, allocate: bool, buffered: bool) -> (Cache, SharedMem) {
        let backing = shared(Sram::new("dram", 8192, Cycles::new(50)));
        let cfg = CacheConfig {
            name: "c".into(),
            ways: 2,
            sets: 4,
            line_bytes: 16,
            hit_latency: Cycles::new(1),
            write_policy: policy,
            write_allocate: allocate,
            write_buffer: buffered,
        };
        (Cache::new(cfg, backing.clone()).unwrap(), backing)
    }

    #[test]
    fn cold_miss_then_hit() {
        let (mut c, _) = test_cache(WritePolicy::WriteBack, true, false);
        let mut b = [0u8; 4];
        let miss = c.read(0x20, &mut b).unwrap();
        let hit = c.read(0x24, &mut b).unwrap();
        assert!(miss.get() >= 51);
        assert_eq!(hit, Cycles::new(1));
        assert_eq!(c.stats().get("hits"), 1);
        assert_eq!(c.stats().get("misses"), 1);
    }

    #[test]
    fn data_correct_through_writeback_eviction() {
        let (mut c, backing) = test_cache(WritePolicy::WriteBack, true, false);
        // Write a value into set 0 (addr 0), then evict it by touching three
        // more lines mapping to set 0 (stride = sets * line = 64).
        c.write(0, &[0xAB; 16]).unwrap();
        for i in 1..=2 {
            let mut b = [0u8; 1];
            c.read(i * 64, &mut b).unwrap();
        }
        // addr 0 evicted (2 ways); backing must now hold the data.
        let mut b = [0u8; 16];
        backing.borrow_mut().read(0, &mut b).unwrap();
        assert_eq!(b, [0xAB; 16]);
        assert!(c.stats().get("writebacks") >= 1);
        // And reading through the cache still sees it.
        let mut b2 = [0u8; 16];
        c.read(0, &mut b2).unwrap();
        assert_eq!(b2, [0xAB; 16]);
    }

    #[test]
    fn write_through_propagates_immediately() {
        let (mut c, backing) = test_cache(WritePolicy::WriteThrough, false, true);
        c.write(0x10, &[7; 8]).unwrap();
        let mut b = [0u8; 8];
        backing.borrow_mut().read(0x10, &mut b).unwrap();
        assert_eq!(b, [7; 8]);
    }

    #[test]
    fn write_buffer_hides_latency() {
        let (mut c_buf, _) = test_cache(WritePolicy::WriteThrough, false, true);
        let (mut c_nobuf, _) = test_cache(WritePolicy::WriteThrough, false, false);
        let fast = c_buf.write(0, &[1; 4]).unwrap();
        let slow = c_nobuf.write(0, &[1; 4]).unwrap();
        assert!(slow > fast);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (mut c, _) = test_cache(WritePolicy::WriteBack, true, false);
        let mut b = [0u8; 1];
        // Fill both ways of set 0 with lines A (0) and B (64).
        c.read(0, &mut b).unwrap();
        c.read(64, &mut b).unwrap();
        // Touch A again so B is LRU.
        c.read(0, &mut b).unwrap();
        // Bring in C (128): should evict B, keep A.
        c.read(128, &mut b).unwrap();
        let misses = c.stats().get("misses");
        c.read(0, &mut b).unwrap(); // A still resident
        assert_eq!(c.stats().get("misses"), misses);
        c.read(64, &mut b).unwrap(); // B was evicted
        assert_eq!(c.stats().get("misses"), misses + 1);
    }

    #[test]
    fn cross_line_access_splits() {
        let (mut c, _) = test_cache(WritePolicy::WriteBack, true, false);
        let data: Vec<u8> = (0..32).collect();
        c.write(8, &data).unwrap(); // spans 3 lines
        let mut b = vec![0u8; 32];
        c.read(8, &mut b).unwrap();
        assert_eq!(b, data);
    }

    #[test]
    fn flush_writes_dirty_lines() {
        let (mut c, backing) = test_cache(WritePolicy::WriteBack, true, false);
        c.write(0x40, &[0x5A; 16]).unwrap();
        c.flush().unwrap();
        let mut b = [0u8; 16];
        backing.borrow_mut().read(0x40, &mut b).unwrap();
        assert_eq!(b, [0x5A; 16]);
        // After flush, a read misses again.
        let misses = c.stats().get("misses");
        let mut b2 = [0u8; 1];
        c.read(0x40, &mut b2).unwrap();
        assert_eq!(c.stats().get("misses"), misses + 1);
    }

    #[test]
    fn miss_ratio_computed() {
        let (mut c, _) = test_cache(WritePolicy::WriteBack, true, false);
        let mut b = [0u8; 1];
        c.read(0, &mut b).unwrap();
        c.read(0, &mut b).unwrap();
        c.read(0, &mut b).unwrap();
        c.read(0, &mut b).unwrap();
        assert!((c.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn probe_fetch_mirrors_hit_side_effects() {
        let (mut c, _) = test_cache(WritePolicy::WriteBack, true, false);
        let mut b = [0u8; 4];
        c.read(0x20, &mut b).unwrap(); // bring the line in
        let hits = c.stats().get("hits");
        let bytes = c.stats().get("bytes_read");
        assert!(c.probe_fetch(0x20, 4), "resident line revalidates");
        assert_eq!(c.stats().get("hits"), hits + 1);
        assert_eq!(c.stats().get("bytes_read"), bytes + 4);
        // Not resident: no side effects at all.
        let misses = c.stats().get("misses");
        assert!(!c.probe_fetch(0x100, 4));
        assert_eq!(c.stats().get("hits"), hits + 1);
        assert_eq!(c.stats().get("misses"), misses);
        // Line-straddling accesses always refuse (line_bytes = 16).
        assert!(!c.probe_fetch(0x2E, 4));
    }

    #[test]
    fn probe_fetch_touch_updates_lru() {
        let (mut c, _) = test_cache(WritePolicy::WriteBack, true, false);
        let mut b = [0u8; 1];
        // Fill both ways of set 0 with lines A (0) and B (64).
        c.read(0, &mut b).unwrap();
        c.read(64, &mut b).unwrap();
        // Revalidate A via the probe, making B the LRU victim.
        assert!(c.probe_fetch(0, 4));
        c.read(128, &mut b).unwrap(); // brings in C, must evict B
        let misses = c.stats().get("misses");
        c.read(0, &mut b).unwrap(); // A survived
        assert_eq!(c.stats().get("misses"), misses);
    }

    #[test]
    fn epoch_tracks_refills_and_flush() {
        let (mut c, _) = test_cache(WritePolicy::WriteBack, true, false);
        let e0 = c.epoch();
        let mut b = [0u8; 4];
        c.read(0, &mut b).unwrap(); // refill
        let e1 = c.epoch();
        assert!(e1 > e0);
        c.read(0, &mut b).unwrap(); // pure hit: stable
        assert_eq!(c.epoch(), e1);
        assert!(c.probe_fetch(0, 4)); // probe: stable
        assert_eq!(c.epoch(), e1);
        c.flush().unwrap();
        assert!(c.epoch() > e1);
    }

    #[test]
    fn invalid_geometry_rejected() {
        let backing = shared(Sram::new("x", 64, Cycles::new(1)));
        let cfg = CacheConfig {
            name: "bad".into(),
            ways: 1,
            sets: 3, // not a power of two
            line_bytes: 16,
            hit_latency: Cycles::new(1),
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            write_buffer: false,
        };
        assert!(Cache::new(cfg, backing).is_err());
    }

    #[test]
    fn config_size_formula() {
        // The paper's LLC: 8 ways * 256 lines * 8 blocks * 8 B = 128 kB.
        let cfg = CacheConfig {
            name: "llc".into(),
            ways: 8,
            sets: 256,
            line_bytes: 64,
            hit_latency: Cycles::new(2),
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            write_buffer: false,
        };
        assert_eq!(cfg.size_bytes(), 128 * 1024);
    }
}
