//! The Last-Level Cache of §III-A: cacheable-region filter plus a
//! parameterizable set-associative cache.

use crate::{Cache, CacheConfig, MemoryDevice, SharedMem, WritePolicy};
use hulkv_sim::{Cycles, SharedTracer, SimError, Stats, Track};

/// Geometry of the LLC, expressed in the paper's own parameters.
///
/// "Blocks" are as wide as the AXI data width; one chooses the number of
/// blocks per line, the number of lines per set, and the number of ways.
/// The resulting size is `ways × lines × blocks × AXI_dw`.
///
/// # Example
///
/// ```
/// use hulkv_mem::LlcConfig;
///
/// // HULK-V: 8 blocks, 256 lines, 8 ways, 64-bit AXI = 128 kB.
/// let cfg = LlcConfig::default();
/// assert_eq!(cfg.size_bytes(), 128 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlcConfig {
    /// Blocks (AXI-data-width words) per cache line.
    pub blocks: usize,
    /// Lines per set (the paper's `N_lines`; the number of sets).
    pub lines: usize,
    /// Associativity.
    pub ways: usize,
    /// AXI data width in bytes (8 for the 64-bit host crossbar).
    pub axi_bytes: usize,
    /// Hit latency (tag SRAM lookup is single-cycle; add read-out).
    pub hit_latency: Cycles,
    /// Start of the cacheable address window (device-local offset).
    pub cacheable_start: u64,
    /// End (exclusive) of the cacheable address window.
    pub cacheable_end: u64,
}

impl Default for LlcConfig {
    fn default() -> Self {
        LlcConfig {
            blocks: 8,
            lines: 256,
            ways: 8,
            axi_bytes: 8,
            hit_latency: Cycles::new(2),
            cacheable_start: 0,
            cacheable_end: u64::MAX,
        }
    }
}

impl LlcConfig {
    /// `LLC_size = N_ways · N_lines · N_blocks · AXI_dw`.
    pub fn size_bytes(&self) -> u64 {
        (self.ways * self.lines * self.blocks * self.axi_bytes) as u64
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.blocks * self.axi_bytes
    }
}

/// The Last-Level Cache tightly coupled to the memory controller.
///
/// Incoming AXI transactions are first filtered: requests inside the
/// cacheable region go to the cache, the others are propagated directly to
/// the external memory. The cache itself is write-back/write-allocate, with
/// evictions generating write transactions and refills read transactions on
/// the output port, exactly as in Figure 2 of the paper.
///
/// # Example
///
/// ```
/// use hulkv_mem::{shared, HyperRam, HyperRamConfig, Llc, LlcConfig, MemoryDevice};
///
/// let dram = shared(HyperRam::new(HyperRamConfig::default()));
/// let mut llc = Llc::new(LlcConfig::default(), dram)?;
/// let mut word = [0u8; 8];
/// let cold = llc.read(0x0, &mut word)?;
/// let hot = llc.read(0x8, &mut word)?;
/// assert!(cold.get() > 10 * hot.get());
/// # Ok::<(), hulkv_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Llc {
    cfg: LlcConfig,
    cache: Cache,
    bypass: SharedMem,
    stats: Stats,
}

impl Llc {
    /// Builds the LLC in front of `backing` (the memory controller).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate geometries.
    pub fn new(cfg: LlcConfig, backing: SharedMem) -> Result<Self, SimError> {
        let cache_cfg = CacheConfig {
            name: "llc".into(),
            ways: cfg.ways,
            sets: cfg.lines,
            line_bytes: cfg.line_bytes(),
            hit_latency: cfg.hit_latency,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            write_buffer: false,
        };
        let cache = Cache::new(cache_cfg, backing.clone())?;
        Ok(Llc {
            cfg,
            cache,
            bypass: backing,
            stats: Stats::new("llc_front"),
        })
    }

    /// The LLC geometry.
    pub fn config(&self) -> &LlcConfig {
        &self.cfg
    }

    /// Attaches a structured SoC tracer; the internal cache records its
    /// hits, misses and evictions on the LLC track.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.cache.set_tracer(tracer, Track::Llc);
    }

    /// Statistics of the internal cache (hits, misses, writebacks…).
    pub fn cache_stats(&self) -> &Stats {
        self.cache.stats()
    }

    /// Miss ratio of the internal cache.
    pub fn miss_ratio(&self) -> f64 {
        self.cache.miss_ratio()
    }

    /// Writes back all dirty lines and invalidates the cache.
    ///
    /// # Errors
    ///
    /// Propagates backing-store errors.
    pub fn flush(&mut self) -> Result<Cycles, SimError> {
        self.cache.flush()
    }

    /// FNV-1a digest of the internal cache's microarchitectural state.
    pub fn state_digest(&self) -> u64 {
        self.cache.state_digest()
    }

    /// Serializes the internal cache and the front-end stats into `snap`.
    pub fn snapshot_into(&self, snap: &mut hulkv_sim::Snapshot) -> hulkv_sim::Json {
        use hulkv_sim::snap::stats_to_json;
        let cache = self.cache.snapshot_into(snap);
        hulkv_sim::Json::obj([("cache", cache), ("stats", stats_to_json(&self.stats))])
    }

    /// Restores state written by [`Llc::snapshot_into`].
    ///
    /// # Errors
    ///
    /// On geometry mismatch or a malformed section.
    pub fn restore_from(
        &mut self,
        snap: &hulkv_sim::Snapshot,
        j: &hulkv_sim::Json,
    ) -> hulkv_sim::SnapResult<()> {
        use hulkv_sim::snap::{get, restore_stats};
        self.cache.restore_from(snap, get(j, "cache")?)?;
        restore_stats(&mut self.stats, get(j, "stats")?)
    }

    fn cacheable(&self, offset: u64, len: usize) -> bool {
        offset >= self.cfg.cacheable_start && offset + len as u64 <= self.cfg.cacheable_end
    }
}

impl MemoryDevice for Llc {
    fn size_bytes(&self) -> u64 {
        self.bypass.borrow().size_bytes()
    }

    fn peek(&self, offset: u64, buf: &mut [u8]) -> Result<(), SimError> {
        if self.cacheable(offset, buf.len()) {
            self.cache.peek(offset, buf)
        } else {
            self.bypass.borrow().peek(offset, buf)
        }
    }

    fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        if self.cacheable(offset, buf.len()) {
            self.stats.inc("cacheable");
            self.cache.read(offset, buf)
        } else {
            self.stats.inc("bypassed");
            self.bypass.borrow_mut().read(offset, buf)
        }
    }

    fn write(&mut self, offset: u64, data: &[u8]) -> Result<Cycles, SimError> {
        if self.cacheable(offset, data.len()) {
            self.stats.inc("cacheable");
            self.cache.write(offset, data)
        } else {
            self.stats.inc("bypassed");
            self.bypass.borrow_mut().write(offset, data)
        }
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.cache.reset_stats();
    }

    fn attach_tracer(&mut self, tracer: SharedTracer) {
        self.cache.set_tracer(tracer.clone(), Track::Llc);
        self.bypass.borrow_mut().attach_tracer(tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shared, Sram};

    fn llc_over_sram(cacheable_end: u64) -> (Llc, SharedMem) {
        let backing = shared(Sram::new("mem", 1 << 20, Cycles::new(100)));
        let cfg = LlcConfig {
            cacheable_end,
            ..LlcConfig::default()
        };
        (Llc::new(cfg, backing.clone()).unwrap(), backing)
    }

    #[test]
    fn paper_geometry() {
        let cfg = LlcConfig::default();
        assert_eq!(cfg.line_bytes(), 64);
        assert_eq!(cfg.size_bytes(), 128 * 1024);
    }

    #[test]
    fn hits_avoid_backing_store() {
        let (mut llc, backing) = llc_over_sram(u64::MAX);
        let mut b = [0u8; 8];
        llc.read(0, &mut b).unwrap();
        let reads_after_cold = backing.borrow().stats().get("reads");
        llc.read(8, &mut b).unwrap(); // same line
        assert_eq!(backing.borrow().stats().get("reads"), reads_after_cold);
    }

    #[test]
    fn non_cacheable_region_bypasses() {
        let (mut llc, backing) = llc_over_sram(0x1000);
        let mut b = [0u8; 8];
        llc.read(0x2000, &mut b).unwrap();
        llc.read(0x2000, &mut b).unwrap();
        assert_eq!(backing.borrow().stats().get("reads"), 2);
        assert_eq!(llc.stats().get("bypassed"), 2);
        assert_eq!(
            llc.cache_stats().get("hits") + llc.cache_stats().get("misses"),
            0
        );
    }

    #[test]
    fn straddling_window_edge_bypasses() {
        let (mut llc, _) = llc_over_sram(0x1000);
        let mut b = [0u8; 8];
        llc.read(0x0FFC, &mut b).unwrap();
        assert_eq!(llc.stats().get("bypassed"), 1);
    }

    #[test]
    fn write_read_consistency_across_flush() {
        let (mut llc, _) = llc_over_sram(u64::MAX);
        llc.write_u64(0x100, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        llc.flush().unwrap();
        assert_eq!(llc.read_u64(0x100).unwrap().0, 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn miss_ratio_reported() {
        let (mut llc, _) = llc_over_sram(u64::MAX);
        let mut b = [0u8; 8];
        llc.read(0, &mut b).unwrap();
        llc.read(0, &mut b).unwrap();
        assert!((llc.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
