//! An address-routed interconnect modeling the host AXI4 crossbar.

use crate::{MemoryDevice, SharedMem};
use hulkv_sim::{Cycles, SimError, Stats};

struct Region {
    name: String,
    base: u64,
    size: u64,
    device: SharedMem,
}

impl std::fmt::Debug for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Region")
            .field("name", &self.name)
            .field("base", &format_args!("{:#x}", self.base))
            .field("size", &format_args!("{:#x}", self.size))
            .finish()
    }
}

/// The high-bandwidth, low-latency 64-bit AXI4 crossbar of the host domain.
///
/// Routes global physical addresses to slave devices by region and charges a
/// fixed crossbar traversal latency per transaction. Accesses must not span
/// a region boundary (AXI bursts never cross slaves).
///
/// The bus itself implements [`MemoryDevice`] — its offsets are global
/// addresses — so caches and cores can treat it as their backing store.
///
/// # Example
///
/// ```
/// use hulkv_mem::{shared, Bus, MemoryDevice, Sram};
/// use hulkv_sim::Cycles;
///
/// let mut bus = Bus::new("axi", Cycles::new(2));
/// bus.map("l2spm", 0x1C00_0000, shared(Sram::new("l2spm", 4096, Cycles::new(1))))?;
/// bus.write_u32(0x1C00_0010, 42)?;
/// assert_eq!(bus.read_u32(0x1C00_0010)?.0, 42);
/// # Ok::<(), hulkv_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Bus {
    regions: Vec<Region>,
    latency: Cycles,
    stats: Stats,
}

impl Bus {
    /// Creates an empty bus charging `latency` per routed transaction.
    pub fn new(name: impl Into<String>, latency: Cycles) -> Self {
        Bus {
            regions: Vec::new(),
            latency,
            stats: Stats::new(name),
        }
    }

    /// Maps `device` at `base`; the region size is the device size.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the region overlaps an
    /// existing mapping.
    pub fn map(
        &mut self,
        name: impl Into<String>,
        base: u64,
        device: SharedMem,
    ) -> Result<(), SimError> {
        let size = device.borrow().size_bytes();
        let name = name.into();
        for r in &self.regions {
            let overlap = base < r.base + r.size && r.base < base + size;
            if overlap {
                return Err(SimError::InvalidConfig(format!(
                    "region {name} [{base:#x}..) overlaps {}",
                    r.name
                )));
            }
        }
        self.regions.push(Region {
            name,
            base,
            size,
            device,
        });
        self.regions.sort_by_key(|r| r.base);
        Ok(())
    }

    /// Returns `(device, local_offset, region_name)` for a global address
    /// range, or an unmapped/straddle error.
    fn route(&self, addr: u64, len: usize) -> Result<(&Region, u64), SimError> {
        let region = self
            .regions
            .iter()
            .find(|r| addr >= r.base && addr < r.base + r.size)
            .ok_or(SimError::UnmappedAddress { addr })?;
        if addr + len as u64 > region.base + region.size {
            return Err(SimError::OutOfRange {
                what: "bus transaction end",
                value: addr + len as u64,
                limit: region.base + region.size,
            });
        }
        Ok((region, addr - region.base))
    }

    /// Iterates over `(name, base, size)` of the mapped regions.
    pub fn regions(&self) -> impl Iterator<Item = (&str, u64, u64)> {
        self.regions
            .iter()
            .map(|r| (r.name.as_str(), r.base, r.size))
    }

    /// Returns the device mapped with `name`, if any.
    pub fn device(&self, name: &str) -> Option<SharedMem> {
        self.regions
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.device.clone())
    }

    /// Serializes the crossbar's only mutable state — its traffic counters.
    /// Mapped devices are snapshotted by their owners, not through the bus.
    pub fn snapshot_json(&self) -> hulkv_sim::Json {
        hulkv_sim::snap::stats_to_json(&self.stats)
    }

    /// Restores counters written by [`Bus::snapshot_json`].
    ///
    /// # Errors
    ///
    /// On a malformed section.
    pub fn restore_json(&mut self, j: &hulkv_sim::Json) -> hulkv_sim::SnapResult<()> {
        hulkv_sim::snap::restore_stats(&mut self.stats, j)
    }
}

impl MemoryDevice for Bus {
    fn size_bytes(&self) -> u64 {
        self.regions.last().map(|r| r.base + r.size).unwrap_or(0)
    }

    fn peek(&self, offset: u64, buf: &mut [u8]) -> Result<(), SimError> {
        let (region, local) = self.route(offset, buf.len())?;
        region.device.borrow().peek(local, buf)
    }

    fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        let (region, local) = self.route(offset, buf.len())?;
        let device = region.device.clone();
        let lat = device.borrow_mut().read(local, buf)?;
        self.stats.inc("reads");
        self.stats.add("bytes_read", buf.len() as u64);
        Ok(lat + self.latency)
    }

    fn write(&mut self, offset: u64, data: &[u8]) -> Result<Cycles, SimError> {
        let (region, local) = self.route(offset, data.len())?;
        let device = region.device.clone();
        let lat = device.borrow_mut().write(local, data)?;
        self.stats.inc("writes");
        self.stats.add("bytes_written", data.len() as u64);
        Ok(lat + self.latency)
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn attach_tracer(&mut self, tracer: hulkv_sim::SharedTracer) {
        for region in &self.regions {
            region.device.borrow_mut().attach_tracer(tracer.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shared, Sram};

    fn bus_with_two_regions() -> Bus {
        let mut bus = Bus::new("axi", Cycles::new(2));
        bus.map("a", 0x1000, shared(Sram::new("a", 256, Cycles::new(1))))
            .unwrap();
        bus.map("b", 0x8000, shared(Sram::new("b", 256, Cycles::new(3))))
            .unwrap();
        bus
    }

    #[test]
    fn routes_by_address() {
        let mut bus = bus_with_two_regions();
        bus.write(0x1000, &[1]).unwrap();
        bus.write(0x8000, &[2]).unwrap();
        let a = bus.device("a").unwrap();
        let b = bus.device("b").unwrap();
        let mut buf = [0u8; 1];
        a.borrow_mut().read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 1);
        b.borrow_mut().read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 2);
    }

    #[test]
    fn adds_crossbar_latency() {
        let mut bus = bus_with_two_regions();
        let mut buf = [0u8; 1];
        assert_eq!(bus.read(0x1000, &mut buf).unwrap(), Cycles::new(3)); // 1+2
        assert_eq!(bus.read(0x8000, &mut buf).unwrap(), Cycles::new(5)); // 3+2
    }

    #[test]
    fn unmapped_address_faults() {
        let mut bus = bus_with_two_regions();
        let mut buf = [0u8; 1];
        assert!(matches!(
            bus.read(0x0, &mut buf),
            Err(SimError::UnmappedAddress { addr: 0 })
        ));
    }

    #[test]
    fn straddling_transaction_rejected() {
        let mut bus = bus_with_two_regions();
        let mut buf = [0u8; 8];
        assert!(bus.read(0x10FC, &mut buf).is_err());
    }

    #[test]
    fn overlapping_region_rejected() {
        let mut bus = bus_with_two_regions();
        let r = bus.map("c", 0x10FF, shared(Sram::new("c", 16, Cycles::new(1))));
        assert!(r.is_err());
    }

    #[test]
    fn region_listing() {
        let bus = bus_with_two_regions();
        let regions: Vec<_> = bus.regions().collect();
        assert_eq!(regions[0], ("a", 0x1000, 256));
        assert_eq!(regions[1], ("b", 0x8000, 256));
        assert_eq!(bus.size_bytes(), 0x8000 + 256);
    }
}
