//! The CVA6 application-class host of HULK-V.
//!
//! CVA6 is a 6-stage, single-issue, in-order 64-bit RISC-V core supporting
//! RV64GC, virtual memory (Sv39), three privilege levels and physical
//! memory protection — the part of HULK-V that runs Linux. This crate wraps
//! the [`hulkv_rv`] RV64 interpreter with the core's memory-side
//! microarchitecture:
//!
//! * a 16 kB L1 instruction cache;
//! * a 32 kB **write-through** L1 data cache ("to enable simple coherency
//!   with other masters to the interconnect") with a store buffer;
//! * the clock-domain crossing from the core clock (up to 900 MHz) to the
//!   450 MHz SoC interconnect;
//! * a CLINT-lite (`mtime`, `mtimecmp`, `msip`) memory-mapped block.
//!
//! # Example
//!
//! ```
//! use hulkv_host::{Host, HostConfig};
//! use hulkv_mem::{shared, Bus, MemoryDevice, Sram};
//! use hulkv_rv::{Asm, Reg, Xlen};
//!
//! let mut bus = Bus::new("axi", hulkv_sim::Cycles::new(2));
//! bus.map("dram", 0x8000_0000, shared(Sram::new("dram", 1 << 20, hulkv_sim::Cycles::new(30))))?;
//! let mut host = Host::new(HostConfig::default(), shared(bus));
//!
//! let mut a = Asm::new(Xlen::Rv64);
//! a.li(Reg::A0, 6);
//! a.li(Reg::A1, 7);
//! a.mul(Reg::A0, Reg::A0, Reg::A1);
//! a.ebreak();
//! host.load_program(0x8000_0000, &a.assemble()?)?;
//! host.core_mut().set_pc(0x8000_0000);
//! host.run(100_000)?;
//! assert_eq!(host.core().reg(Reg::A0), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clint;
mod cva6;
mod periph;
mod plic;

pub use clint::Clint;
pub use cva6::{Host, HostConfig};
pub use periph::{I2sSource, Uart};
pub use plic::Plic;
