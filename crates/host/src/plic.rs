//! A Platform-Level Interrupt Controller (PLIC-lite).
//!
//! HULK-V's host domain contains a standard PLIC aggregating the
//! peripheral interrupt lines toward CVA6's external-interrupt pin. The
//! model implements the registers bare-metal runtimes use: per-source
//! priority and enable, pending bits, and the claim/complete handshake.

use hulkv_mem::MemoryDevice;
use hulkv_sim::{Cycles, SimError, Stats};

const PRIORITY_BASE: u64 = 0x0000; // 4 bytes per source, source 1..
const PENDING: u64 = 0x1000;
const ENABLE: u64 = 0x2000;
const THRESHOLD: u64 = 0x20_0000;
const CLAIM: u64 = 0x20_0004;
const SIZE: u64 = 0x40_0000;

/// The PLIC: up to 63 interrupt sources (ids 1–63; 0 is reserved).
///
/// # Example
///
/// ```
/// use hulkv_host::Plic;
/// use hulkv_mem::MemoryDevice;
///
/// let mut plic = Plic::new();
/// plic.write_u32(4, 5)?;        // priority of source 1
/// plic.write_u32(0x2000, 1 << 1)?; // enable source 1
/// plic.raise(1);
/// assert!(plic.external_pending());
/// let (claimed, _) = plic.read_u32(0x20_0004)?; // claim
/// assert_eq!(claimed, 1);
/// assert!(!plic.external_pending());
/// # Ok::<(), hulkv_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Plic {
    priority: [u32; 64],
    pending: u64,
    enable: u64,
    threshold: u32,
    in_service: Option<u32>,
    stats: Stats,
}

impl Default for Plic {
    fn default() -> Self {
        Self::new()
    }
}

impl Plic {
    /// Creates a PLIC with all sources disabled at priority 0.
    pub fn new() -> Self {
        Plic {
            priority: [0; 64],
            pending: 0,
            enable: 0,
            threshold: 0,
            in_service: None,
            stats: Stats::new("plic"),
        }
    }

    /// Asserts interrupt source `id` (1–63).
    ///
    /// # Panics
    ///
    /// Panics for id 0 or ≥ 64.
    pub fn raise(&mut self, id: u32) {
        assert!((1..64).contains(&id), "invalid PLIC source {id}");
        self.pending |= 1 << id;
        self.stats.inc("raised");
    }

    /// Whether an enabled source above the threshold is pending — the
    /// level of the external-interrupt line toward the core.
    pub fn external_pending(&self) -> bool {
        self.best_candidate().is_some()
    }

    fn best_candidate(&self) -> Option<u32> {
        (1..64)
            .filter(|&id| {
                self.pending & self.enable & (1 << id) != 0
                    && self.priority[id as usize] > self.threshold
            })
            .max_by_key(|&id| (self.priority[id as usize], u32::MAX - id))
    }

    fn claim(&mut self) -> u32 {
        match self.best_candidate() {
            Some(id) => {
                self.pending &= !(1u64 << id);
                self.in_service = Some(id);
                self.stats.inc("claims");
                id
            }
            None => 0,
        }
    }

    fn complete(&mut self, id: u32) {
        if self.in_service == Some(id) {
            self.in_service = None;
            self.stats.inc("completes");
        }
    }

    /// FNV-1a digest of the register state: priorities, pending, enable,
    /// threshold and the in-service source. Stats are excluded: they count
    /// accesses, not state.
    pub fn state_digest(&self) -> u64 {
        let mut h = hulkv_sim::Fnv64::new();
        for p in &self.priority {
            h.write_u64(u64::from(*p));
        }
        h.write_u64(self.pending)
            .write_u64(self.enable)
            .write_u64(u64::from(self.threshold))
            .write_u64(self.in_service.map_or(u64::MAX, u64::from))
            .finish()
    }

    /// Serializes registers and stats.
    pub fn snapshot_json(&self) -> hulkv_sim::Json {
        use hulkv_sim::snap::{hex, stats_to_json};
        use hulkv_sim::Json;
        Json::obj([
            (
                "priority",
                Json::Arr(self.priority.iter().map(|&p| hex(u64::from(p))).collect()),
            ),
            ("pending", hex(self.pending)),
            ("enable", hex(self.enable)),
            ("threshold", hex(u64::from(self.threshold))),
            (
                "in_service",
                self.in_service.map_or(Json::Null, |id| hex(u64::from(id))),
            ),
            ("stats", stats_to_json(&self.stats)),
        ])
    }

    /// Restores state written by [`Plic::snapshot_json`].
    ///
    /// # Errors
    ///
    /// On a malformed section.
    pub fn restore_json(&mut self, j: &hulkv_sim::Json) -> hulkv_sim::SnapResult<()> {
        use hulkv_sim::snap::{get, get_arr, get_u64, restore_stats, unhex, SnapError};
        use hulkv_sim::Json;
        let prio = get_arr(j, "priority")?;
        if prio.len() != self.priority.len() {
            return Err(SnapError::msg("PLIC priority array length mismatch"));
        }
        for (slot, p) in self.priority.iter_mut().zip(prio) {
            *slot = unhex(p)? as u32;
        }
        self.pending = get_u64(j, "pending")?;
        self.enable = get_u64(j, "enable")?;
        self.threshold = get_u64(j, "threshold")? as u32;
        self.in_service = match get(j, "in_service")? {
            Json::Null => None,
            v => Some(unhex(v)? as u32),
        };
        restore_stats(&mut self.stats, get(j, "stats")?)
    }
}

impl MemoryDevice for Plic {
    fn size_bytes(&self) -> u64 {
        SIZE
    }

    fn peek(&self, offset: u64, buf: &mut [u8]) -> Result<(), SimError> {
        if buf.len() > 8 {
            return Err(SimError::OutOfRange {
                what: "plic access width",
                value: buf.len() as u64,
                limit: 8,
            });
        }
        // CLAIM peeks report the would-be claim without performing it.
        let value: u64 = match offset {
            PENDING => self.pending,
            ENABLE => self.enable,
            THRESHOLD => self.threshold as u64,
            CLAIM => self.best_candidate().unwrap_or(0) as u64,
            o if o < PRIORITY_BASE + 64 * 4 && o % 4 == 0 => self.priority[(o / 4) as usize] as u64,
            _ => 0,
        };
        buf.copy_from_slice(&value.to_le_bytes()[..buf.len()]);
        Ok(())
    }

    fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        if buf.len() > 8 {
            return Err(SimError::OutOfRange {
                what: "plic access width",
                value: buf.len() as u64,
                limit: 8,
            });
        }
        let value: u64 = match offset {
            PENDING => self.pending,
            ENABLE => self.enable,
            THRESHOLD => self.threshold as u64,
            CLAIM => self.claim() as u64,
            o if o < PRIORITY_BASE + 64 * 4 && o % 4 == 0 => self.priority[(o / 4) as usize] as u64,
            _ => 0,
        };
        let bytes = value.to_le_bytes();
        buf.copy_from_slice(&bytes[..buf.len()]);
        Ok(Cycles::new(3))
    }

    fn write(&mut self, offset: u64, data: &[u8]) -> Result<Cycles, SimError> {
        let mut bytes = [0u8; 8];
        if data.len() > 8 {
            return Err(SimError::OutOfRange {
                what: "plic access width",
                value: data.len() as u64,
                limit: 8,
            });
        }
        bytes[..data.len()].copy_from_slice(data);
        let value = u64::from_le_bytes(bytes);
        match offset {
            ENABLE => self.enable = value & !1,
            THRESHOLD => self.threshold = value as u32,
            CLAIM => self.complete(value as u32),
            o if o != 0 && o < PRIORITY_BASE + 64 * 4 && o % 4 == 0 => {
                self.priority[(o / 4) as usize] = value as u32;
            }
            _ => {}
        }
        Ok(Cycles::new(3))
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_plic(sources: &[(u32, u32)]) -> Plic {
        let mut p = Plic::new();
        let mut enable = 0u64;
        for &(id, prio) in sources {
            p.write_u32(id as u64 * 4, prio).unwrap();
            enable |= 1 << id;
        }
        p.write_u64(ENABLE, enable).unwrap();
        p
    }

    #[test]
    fn claim_returns_highest_priority() {
        let mut p = enabled_plic(&[(1, 2), (2, 7), (3, 5)]);
        p.raise(1);
        p.raise(2);
        p.raise(3);
        assert_eq!(p.read_u32(CLAIM).unwrap().0, 2);
        assert_eq!(p.read_u32(CLAIM).unwrap().0, 3);
        assert_eq!(p.read_u32(CLAIM).unwrap().0, 1);
        assert_eq!(p.read_u32(CLAIM).unwrap().0, 0);
    }

    #[test]
    fn threshold_masks_low_priorities() {
        let mut p = enabled_plic(&[(4, 3)]);
        p.write_u32(THRESHOLD, 3).unwrap();
        p.raise(4);
        assert!(!p.external_pending());
        p.write_u32(THRESHOLD, 2).unwrap();
        assert!(p.external_pending());
    }

    #[test]
    fn disabled_source_never_pends() {
        let mut p = enabled_plic(&[(1, 1)]);
        p.raise(5); // not enabled
        assert!(!p.external_pending());
    }

    #[test]
    fn complete_handshake() {
        let mut p = enabled_plic(&[(1, 1)]);
        p.raise(1);
        let id = p.read_u32(CLAIM).unwrap().0;
        p.write_u32(CLAIM, id).unwrap();
        assert_eq!(p.stats().get("completes"), 1);
    }

    #[test]
    #[should_panic(expected = "invalid PLIC source")]
    fn source_zero_rejected() {
        Plic::new().raise(0);
    }
}
