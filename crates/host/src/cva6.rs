//! The CVA6 host wrapper: RV64 core + L1 caches + domain crossing.

use hulkv_mem::{shared, Cache, CacheConfig, ClockBridge, MemoryDevice, SharedMem, WritePolicy};
use hulkv_rv::{Core, CoreBus, RvError};
use hulkv_sim::{Cycles, Freq, SharedTracer, SimError, Stats, Track};

/// Static configuration of the host subsystem.
///
/// # Example
///
/// ```
/// use hulkv_host::HostConfig;
///
/// let cfg = HostConfig::default();
/// assert_eq!(cfg.l1i_bytes, 16 * 1024);
/// assert_eq!(cfg.l1d_bytes, 32 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostConfig {
    /// Core clock (900 MHz worst-corner in GF22FDX).
    pub freq: Freq,
    /// SoC interconnect clock (450 MHz).
    pub soc_freq: Freq,
    /// L1 instruction cache size (16 kB).
    pub l1i_bytes: usize,
    /// L1 data cache size (32 kB).
    pub l1d_bytes: usize,
    /// Cache line size (64 B, matching the LLC block).
    pub line_bytes: usize,
    /// Whether the L1 caches are enabled (disabled for raw-latency studies).
    pub caches_enabled: bool,
    /// Start of cacheable memory: addresses below this are device regions
    /// (CLINT, PLIC, peripherals) accessed uncached, as CVA6's physical
    /// memory attributes mandate.
    pub cacheable_start: u64,
    /// Whether the decoded-instruction cache fast path is enabled.
    /// Config-carried (not just a runtime toggle) so a machine rebuilt
    /// from a snapshot's embedded configuration replays identically.
    pub decode_cache: bool,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            freq: Freq::mhz(900),
            soc_freq: Freq::mhz(450),
            l1i_bytes: 16 * 1024,
            l1d_bytes: 32 * 1024,
            line_bytes: 64,
            caches_enabled: true,
            cacheable_start: 0x1C00_0000,
            decode_cache: true,
        }
    }
}

/// The CVA6 host subsystem: core, L1 caches and the clock bridge onto the
/// SoC interconnect. See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Host {
    cfg: HostConfig,
    core: Core,
    l1i: Cache,
    l1d: Cache,
    bus: SharedMem,
    bridge: SharedMem,
    stats: Stats,
}

impl Host {
    /// Builds the host over the SoC interconnect `bus` (whose latencies are
    /// in the SoC clock domain).
    ///
    /// # Panics
    ///
    /// Panics on degenerate cache geometry (sizes not divisible into
    /// power-of-two sets).
    pub fn new(cfg: HostConfig, bus: SharedMem) -> Self {
        let bridge: SharedMem = shared(ClockBridge::new(bus.clone(), cfg.soc_freq, cfg.freq));
        let l1i = Cache::new(
            CacheConfig {
                name: "l1i".into(),
                ways: 4,
                sets: cfg.l1i_bytes / cfg.line_bytes / 4,
                line_bytes: cfg.line_bytes,
                hit_latency: Cycles::new(1),
                write_policy: WritePolicy::WriteThrough,
                write_allocate: false,
                write_buffer: true,
            },
            bridge.clone(),
        )
        .expect("L1I geometry");
        let l1d = Cache::new(
            CacheConfig {
                name: "l1d".into(),
                ways: 8,
                sets: cfg.l1d_bytes / cfg.line_bytes / 8,
                line_bytes: cfg.line_bytes,
                // CVA6's L1D is write-through with a merging store buffer.
                hit_latency: Cycles::new(1),
                write_policy: WritePolicy::WriteThrough,
                write_allocate: false,
                write_buffer: true,
            },
            bridge.clone(),
        )
        .expect("L1D geometry");
        let mut core = Core::cva6();
        core.set_decode_cache(cfg.decode_cache);
        Host {
            cfg,
            core,
            l1i,
            l1d,
            bus,
            bridge,
            stats: Stats::new("host"),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// Attaches a structured SoC tracer: the core records retires on the
    /// host-hart track and the L1 caches record hits/misses/evictions on
    /// their own tracks.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.core.set_tracer(tracer.clone());
        self.l1i.set_tracer(tracer.clone(), Track::HostL1I);
        self.l1d.set_tracer(tracer, Track::HostL1D);
    }

    /// The CVA6 core.
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Mutable core access (set pc, registers, CSRs).
    pub fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    /// Enables or disables the core's decoded-instruction cache and fetch
    /// µTLB. Used by the differential fuzzer to run fast-path and
    /// reference configurations of the same host side by side.
    pub fn set_decode_cache(&mut self, enabled: bool) {
        self.core.set_decode_cache(enabled);
    }

    /// L1 data cache statistics.
    pub fn l1d_stats(&self) -> &Stats {
        self.l1d.stats()
    }

    /// L1 instruction cache statistics.
    pub fn l1i_stats(&self) -> &Stats {
        self.l1i.stats()
    }

    /// L1 data cache miss ratio.
    pub fn l1d_miss_ratio(&self) -> f64 {
        self.l1d.miss_ratio()
    }

    /// The SoC interconnect this host is attached to.
    pub fn bus(&self) -> SharedMem {
        self.bus.clone()
    }

    /// Writes a program into SoC memory through the interconnect backdoor
    /// (no cycles charged — this models the boot loader) and invalidates
    /// the L1 instruction cache, as the `fence.i` after a code load would.
    /// The data cache is left warm on purpose: reloading code must not
    /// perturb data-locality experiments.
    ///
    /// # Errors
    ///
    /// Propagates interconnect routing errors.
    pub fn load_program(&mut self, addr: u64, words: &[u32]) -> Result<(), SimError> {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.bus.borrow_mut().write(addr, &bytes)?;
        self.l1i.flush()?;
        // The L1I flush already bumps the fetch epoch, but dropping the
        // decoded entries explicitly keeps the invalidation counter honest.
        self.core.invalidate_decoded();
        Ok(())
    }

    /// Writes raw data into SoC memory through the backdoor.
    ///
    /// # Errors
    ///
    /// Propagates interconnect routing errors.
    pub fn write_mem(&mut self, addr: u64, data: &[u8]) -> Result<(), SimError> {
        self.bus.borrow_mut().write(addr, data)?;
        Ok(())
    }

    /// Reads raw data from SoC memory through the backdoor.
    ///
    /// # Errors
    ///
    /// Propagates interconnect routing errors.
    pub fn read_mem(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), SimError> {
        self.bus.borrow_mut().read(addr, buf)?;
        Ok(())
    }

    /// Invalidates both L1 caches (writing back nothing — they are
    /// write-through), e.g. between benchmark configurations.
    ///
    /// # Errors
    ///
    /// Propagates backing errors (none occur for write-through caches).
    pub fn flush_l1(&mut self) -> Result<(), SimError> {
        self.l1i.flush()?;
        self.l1d.flush()?;
        Ok(())
    }

    /// Runs the core until `ebreak`, returning consumed core cycles.
    ///
    /// # Errors
    ///
    /// Propagates execution errors; [`RvError::Timeout`] after
    /// `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> Result<Cycles, RvError> {
        let mut view = HostBus {
            l1i: &mut self.l1i,
            l1d: &mut self.l1d,
            bridge: &self.bridge,
            caches_enabled: self.cfg.caches_enabled,
            cacheable_start: self.cfg.cacheable_start,
        };
        let spent = self.core.run(&mut view, max_cycles)?;
        self.stats.add("run_cycles", spent.get());
        Ok(spent)
    }

    /// Runs the core until `ebreak` or until its *total* cycle count
    /// reaches `target`, whichever comes first; returns whether it halted.
    /// The timeline sampler drives a run window by window through this —
    /// the step sequence is the one [`Host::run`] would execute, so
    /// sampled and unsampled runs are cycle-bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates execution errors (never a timeout).
    pub fn run_until_cycle(&mut self, target: u64) -> Result<bool, RvError> {
        let before = self.core.cycles();
        let mut view = HostBus {
            l1i: &mut self.l1i,
            l1d: &mut self.l1d,
            bridge: &self.bridge,
            caches_enabled: self.cfg.caches_enabled,
            cacheable_start: self.cfg.cacheable_start,
        };
        let halted = self.core.run_until_cycle(&mut view, target)?;
        self.stats
            .add("run_cycles", (self.core.cycles() - before).get());
        Ok(halted)
    }

    /// FNV-1a digest of the host's mutable state: core architecture plus
    /// both L1 caches' microarchitectural state.
    pub fn state_digest(&self) -> u64 {
        hulkv_sim::Fnv64::new()
            .write_u64(self.core.state_digest())
            .write_u64(self.l1i.state_digest())
            .write_u64(self.l1d.state_digest())
            .finish()
    }

    /// Serializes core, both L1 caches and the host stats into `snap`. The
    /// interconnect and its devices belong to the SoC and are snapshotted
    /// there.
    pub fn snapshot_into(&self, snap: &mut hulkv_sim::Snapshot) -> hulkv_sim::Json {
        use hulkv_sim::snap::stats_to_json;
        let core = self.core.snapshot_into(snap);
        let l1i = self.l1i.snapshot_into(snap);
        let l1d = self.l1d.snapshot_into(snap);
        hulkv_sim::Json::obj([
            ("core", core),
            ("l1i", l1i),
            ("l1d", l1d),
            ("stats", stats_to_json(&self.stats)),
        ])
    }

    /// Restores state written by [`Host::snapshot_into`] into a host built
    /// with the same configuration.
    ///
    /// # Errors
    ///
    /// On geometry mismatch or a malformed section.
    pub fn restore_from(
        &mut self,
        snap: &hulkv_sim::Snapshot,
        j: &hulkv_sim::Json,
    ) -> hulkv_sim::SnapResult<()> {
        use hulkv_sim::snap::{get, restore_stats};
        self.core.restore_from(snap, get(j, "core")?)?;
        self.l1i.restore_from(snap, get(j, "l1i")?)?;
        self.l1d.restore_from(snap, get(j, "l1d")?)?;
        restore_stats(&mut self.stats, get(j, "stats")?)
    }

    /// Executes a single instruction (for fine-grain co-simulation with the
    /// cluster in the SoC crate).
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn step(&mut self) -> Result<hulkv_rv::StepOutcome, RvError> {
        let mut view = HostBus {
            l1i: &mut self.l1i,
            l1d: &mut self.l1d,
            bridge: &self.bridge,
            caches_enabled: self.cfg.caches_enabled,
            cacheable_start: self.cfg.cacheable_start,
        };
        self.core.step(&mut view)
    }
}

struct HostBus<'a> {
    l1i: &'a mut Cache,
    l1d: &'a mut Cache,
    bridge: &'a SharedMem,
    caches_enabled: bool,
    cacheable_start: u64,
}

impl HostBus<'_> {
    fn cacheable(&self, addr: u64) -> bool {
        self.caches_enabled && addr >= self.cacheable_start
    }
}

impl CoreBus for HostBus<'_> {
    #[inline]
    fn fetch(&mut self, addr: u64) -> Result<(u32, Cycles), SimError> {
        let mut b = [0u8; 4];
        let lat = if self.cacheable(addr) {
            self.l1i.read(addr, &mut b)?
        } else {
            self.bridge.borrow_mut().read(addr, &mut b)?
        };
        Ok((u32::from_le_bytes(b), lat.saturating_sub(Cycles::new(1))))
    }

    #[inline]
    fn fetch_touch(&mut self, addr: u64) -> bool {
        // Only cacheable code can replay: an uncached (device-region) fetch
        // always pays the bridge latency, so it is never installed anyway.
        self.cacheable(addr) && self.l1i.probe_fetch(addr, 4)
    }

    #[inline]
    fn fetch_epoch(&self) -> u64 {
        self.l1i.epoch()
    }

    #[inline]
    fn load(&mut self, addr: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        let lat = if self.cacheable(addr) {
            self.l1d.read(addr, buf)?
        } else {
            self.bridge.borrow_mut().read(addr, buf)?
        };
        Ok(lat.saturating_sub(Cycles::new(1)))
    }

    #[inline]
    fn store(&mut self, addr: u64, data: &[u8]) -> Result<Cycles, SimError> {
        let lat = if self.cacheable(addr) {
            self.l1d.write(addr, data)?
        } else {
            self.bridge.borrow_mut().write(addr, data)?
        };
        Ok(lat.saturating_sub(Cycles::new(1)))
    }

    fn hpm_icache_misses(&self) -> u64 {
        self.l1i.stats().get("misses")
    }

    fn hpm_dcache_misses(&self) -> u64 {
        self.l1d.stats().get("misses")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hulkv_mem::{Bus, Sram};
    use hulkv_rv::{Asm, Reg, Xlen};

    fn host_with(dram_latency: u64, caches: bool) -> Host {
        let mut bus = Bus::new("axi", Cycles::new(2));
        bus.map(
            "dram",
            0x8000_0000,
            shared(Sram::new("dram", 1 << 20, Cycles::new(dram_latency))),
        )
        .unwrap();
        let cfg = HostConfig {
            caches_enabled: caches,
            ..HostConfig::default()
        };
        Host::new(cfg, shared(bus))
    }

    fn run_program(host: &mut Host, build: impl FnOnce(&mut Asm)) -> Cycles {
        let mut a = Asm::new(Xlen::Rv64);
        build(&mut a);
        a.ebreak();
        host.load_program(0x8000_0000, &a.assemble().unwrap())
            .unwrap();
        host.core_mut().set_pc(0x8000_0000);
        host.core_mut().set_reg(Reg::Sp, 0x8008_0000);
        host.run(10_000_000).unwrap()
    }

    #[test]
    fn executes_through_cache_hierarchy() {
        let mut host = host_with(30, true);
        run_program(&mut host, |a| {
            a.li(Reg::T0, 0x8001_0000u32 as i64);
            a.li(Reg::T1, 0xABCD);
            a.sd(Reg::T1, Reg::T0, 0);
            a.ld(Reg::A0, Reg::T0, 0);
        });
        assert_eq!(host.core().reg(Reg::A0), 0xABCD);
        assert!(host.l1d_stats().get("misses") >= 1);
        assert!(host.l1i_stats().get("hits") > 0);
    }

    #[test]
    fn caches_accelerate_repeated_access() {
        let body = |a: &mut Asm| {
            a.li(Reg::T0, 0x8001_0000u32 as i64);
            a.li(Reg::T2, 200);
            let top = a.label();
            a.bind(top);
            a.ld(Reg::T1, Reg::T0, 0);
            a.addi(Reg::T2, Reg::T2, -1);
            a.bnez(Reg::T2, top);
        };
        let mut cached = host_with(30, true);
        let c1 = run_program(&mut cached, body);
        let mut uncached = host_with(30, false);
        let c2 = run_program(&mut uncached, body);
        assert!(c2.get() > 3 * c1.get(), "cached {c1} vs uncached {c2}");
    }

    #[test]
    fn write_through_visible_on_bus() {
        let mut host = host_with(5, true);
        run_program(&mut host, |a| {
            a.li(Reg::T0, 0x8002_0000u32 as i64);
            a.li(Reg::T1, 77);
            a.sw(Reg::T1, Reg::T0, 0);
        });
        let mut b = [0u8; 4];
        host.read_mem(0x8002_0000, &mut b).unwrap();
        assert_eq!(u32::from_le_bytes(b), 77);
    }

    #[test]
    fn decode_cache_is_cycle_neutral_through_cache_hierarchy() {
        let body = |a: &mut Asm| {
            a.li(Reg::T0, 0x8001_0000u32 as i64);
            a.li(Reg::T2, 500);
            let top = a.label();
            a.bind(top);
            a.ld(Reg::T1, Reg::T0, 0);
            a.addi(Reg::T1, Reg::T1, 3);
            a.sd(Reg::T1, Reg::T0, 0);
            a.addi(Reg::T2, Reg::T2, -1);
            a.bnez(Reg::T2, top);
        };
        let mut on = host_with(30, true);
        let c_on = run_program(&mut on, body);
        let mut off = host_with(30, true);
        off.core_mut().set_decode_cache(false);
        let c_off = run_program(&mut off, body);
        assert_eq!(c_on, c_off, "decode cache must not change timing");
        assert_eq!(on.core().reg(Reg::T1), off.core().reg(Reg::T1));
        assert!(on.core().stats().get("decode_hits") > 1000);
        assert_eq!(off.core().stats().get("decode_hits"), 0);
    }

    #[test]
    fn miss_ratio_reflects_stride() {
        // Stride = line size -> every access a fresh line.
        let mut host = host_with(10, true);
        run_program(&mut host, |a| {
            a.li(Reg::T0, 0x8001_0000u32 as i64);
            a.li(Reg::T2, 64);
            let top = a.label();
            a.bind(top);
            a.ld(Reg::T1, Reg::T0, 0);
            a.addi(Reg::T0, Reg::T0, 64);
            a.addi(Reg::T2, Reg::T2, -1);
            a.bnez(Reg::T2, top);
        });
        assert!(host.l1d_miss_ratio() > 0.9);
        host.flush_l1().unwrap();
    }
}
