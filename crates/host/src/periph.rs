//! Peripheral-domain models: the IoT peripherals whose data the µDMA
//! moves autonomously to and from the L2SPM.
//!
//! HULK-V's peripheral domain offers "a complete set of peripherals (I2C,
//! (Q)SPI, CPI, SDIO, UART, CAN, PWM, I2S)". Two representative models are
//! implemented here: a [`Uart`] transmit sink (the debug console every
//! bring-up uses) and an [`I2sSource`] audio sampler (the archetypal
//! µDMA-streamed input). Both are ordinary [`MemoryDevice`]s so the µDMA
//! and the cores reach them through the interconnect.

use hulkv_mem::MemoryDevice;
use hulkv_sim::{Cycles, SimError, SplitMix64, Stats};

/// A UART transmitter.
///
/// Register map: `0x0` TXDATA (write a byte to send), `0x4` STATUS (always
/// ready — the model charges the shift-out time on the write instead, as a
/// µDMA-paced transmitter would experience it).
///
/// # Example
///
/// ```
/// use hulkv_host::Uart;
/// use hulkv_mem::MemoryDevice;
///
/// let mut uart = Uart::new(115_200, 50_000_000);
/// for b in b"hi" {
///     uart.write(0, &[*b])?; // byte-wide stores, as `sb` issues them
/// }
/// assert_eq!(uart.take_output(), b"hi");
/// # Ok::<(), hulkv_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Uart {
    cycles_per_byte: u64,
    output: Vec<u8>,
    stats: Stats,
}

impl Uart {
    /// Creates a UART at `baud` with the peripheral clock `clk_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `baud` is zero.
    pub fn new(baud: u64, clk_hz: u64) -> Self {
        assert!(baud > 0, "baud rate must be non-zero");
        // 10 bit times per byte (start + 8 data + stop).
        Uart {
            cycles_per_byte: (clk_hz * 10).div_ceil(baud),
            output: Vec::new(),
            stats: Stats::new("uart"),
        }
    }

    /// Takes the transmitted bytes captured so far.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.output)
    }

    /// Transmitted bytes so far (without consuming them).
    pub fn output(&self) -> &[u8] {
        &self.output
    }
}

impl MemoryDevice for Uart {
    fn size_bytes(&self) -> u64 {
        0x1000
    }

    fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        // STATUS reads as 0 (ready); TXDATA reads as 0.
        let _ = offset;
        buf.fill(0);
        Ok(Cycles::new(2))
    }

    fn write(&mut self, offset: u64, data: &[u8]) -> Result<Cycles, SimError> {
        if offset == 0 {
            // Each byte of the payload goes out on the wire.
            self.output.extend_from_slice(data);
            self.stats.add("bytes_tx", data.len() as u64);
            return Ok(Cycles::new(self.cycles_per_byte * data.len() as u64));
        }
        Ok(Cycles::new(2))
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

/// An I2S microphone/line-in source.
///
/// Reads pop successive 16-bit samples of a deterministic synthetic
/// waveform (tone + noise) from the receive FIFO, charging real-time
/// pacing: `sample_rate` samples per second at the peripheral clock. This
/// is the producer side of the audio pipelines the paper's µDMA exists
/// for: the engine drains the FIFO into the L2SPM without waking the core.
///
/// # Example
///
/// ```
/// use hulkv_host::I2sSource;
/// use hulkv_mem::MemoryDevice;
///
/// let mut mic = I2sSource::new(16_000, 50_000_000, 440.0);
/// let mut frame = [0u8; 4]; // two samples
/// let lat = mic.read(0, &mut frame)?;
/// assert!(lat.get() >= 2 * (50_000_000 / 16_000));
/// # Ok::<(), hulkv_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct I2sSource {
    cycles_per_sample: u64,
    phase: f64,
    phase_step: f64,
    noise: SplitMix64,
    stats: Stats,
}

impl I2sSource {
    /// Creates a source at `sample_rate` Hz under a `clk_hz` peripheral
    /// clock, generating a `tone_hz` sine plus low-level noise.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is zero.
    pub fn new(sample_rate: u64, clk_hz: u64, tone_hz: f64) -> Self {
        assert!(sample_rate > 0, "sample rate must be non-zero");
        I2sSource {
            cycles_per_sample: clk_hz / sample_rate,
            phase: 0.0,
            phase_step: std::f64::consts::TAU * tone_hz / sample_rate as f64,
            noise: SplitMix64::new(0x1250),
            stats: Stats::new("i2s"),
        }
    }

    fn next_sample(&mut self) -> i16 {
        let tone = (self.phase.sin() * 12000.0) as i32;
        self.phase += self.phase_step;
        let noise = (self.noise.next_below(129) as i32) - 64;
        (tone + noise).clamp(i16::MIN as i32, i16::MAX as i32) as i16
    }
}

impl MemoryDevice for I2sSource {
    fn size_bytes(&self) -> u64 {
        0x1000
    }

    fn read(&mut self, _offset: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        // FIFO semantics: every pair of bytes is the next sample,
        // regardless of the offset within the register window.
        let samples = buf.len().div_ceil(2);
        let mut bytes = Vec::with_capacity(samples * 2);
        for _ in 0..samples {
            bytes.extend_from_slice(&self.next_sample().to_le_bytes());
        }
        buf.copy_from_slice(&bytes[..buf.len()]);
        self.stats.add("samples", samples as u64);
        Ok(Cycles::new(self.cycles_per_sample * samples as u64))
    }

    fn write(&mut self, _offset: u64, _data: &[u8]) -> Result<Cycles, SimError> {
        // Configuration writes are accepted and ignored.
        Ok(Cycles::new(2))
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uart_captures_and_paces() {
        let mut u = Uart::new(1_000_000, 50_000_000);
        let lat = u.write(0, b"hello").unwrap();
        // 10 bits/byte at 50 cycles/bit = 500 cycles/byte.
        assert_eq!(lat, Cycles::new(2500));
        assert_eq!(u.output(), b"hello");
        assert_eq!(u.take_output(), b"hello");
        assert!(u.output().is_empty());
        assert_eq!(u.stats().get("bytes_tx"), 5);
    }

    #[test]
    fn uart_status_reads_ready() {
        let mut u = Uart::new(115_200, 50_000_000);
        assert_eq!(u.read_u32(4).unwrap().0, 0);
    }

    #[test]
    fn i2s_generates_a_tone() {
        let mut mic = I2sSource::new(16_000, 50_000_000, 1000.0);
        let mut buf = vec![0u8; 256];
        mic.read(0, &mut buf).unwrap();
        let samples: Vec<i16> = buf
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes(c.try_into().expect("pair")))
            .collect();
        // A 1 kHz tone at 16 kHz sampling swings through ±12000.
        let max = samples.iter().map(|&s| s as i32).max().unwrap();
        let min = samples.iter().map(|&s| s as i32).min().unwrap();
        assert!(max > 10_000 && min < -10_000, "max {max} min {min}");
    }

    #[test]
    fn i2s_paces_real_time() {
        let mut mic = I2sSource::new(16_000, 50_000_000, 440.0);
        let mut buf = vec![0u8; 32]; // 16 samples
        let lat = mic.read(0, &mut buf).unwrap();
        assert_eq!(lat, Cycles::new(16 * 3125));
    }

    #[test]
    fn i2s_is_deterministic() {
        let mut a = I2sSource::new(16_000, 50_000_000, 440.0);
        let mut b = I2sSource::new(16_000, 50_000_000, 440.0);
        let mut x = vec![0u8; 64];
        let mut y = vec![0u8; 64];
        a.read(0, &mut x).unwrap();
        b.read(0, &mut y).unwrap();
        assert_eq!(x, y);
    }
}
