//! A CLINT-lite: the core-local interruptor block of the host domain.

use hulkv_mem::MemoryDevice;
use hulkv_sim::{Cycles, SimError, Stats};

/// Register offsets within the CLINT block.
const MSIP: u64 = 0x0000;
const MTIMECMP: u64 = 0x4000;
const MTIME: u64 = 0xBFF8;
const SIZE: u64 = 0xC000;

/// The Core Local Interrupt block (`msip`, `mtimecmp`, `mtime`).
///
/// HULK-V's host domain contains a standard CLINT; this model implements
/// the three registers bare-metal runtimes and timer-driven benchmarks
/// touch. `mtime` advances when the SoC harness calls
/// [`Clint::advance`].
///
/// # Example
///
/// ```
/// use hulkv_host::Clint;
/// use hulkv_mem::MemoryDevice;
///
/// let mut clint = Clint::new();
/// clint.advance(100);
/// clint.write_u64(0x4000, 150)?; // mtimecmp
/// assert!(!clint.timer_pending());
/// clint.advance(60);
/// assert!(clint.timer_pending());
/// # Ok::<(), hulkv_sim::SimError>(())
/// ```
#[derive(Debug, Default)]
pub struct Clint {
    msip: u32,
    mtimecmp: u64,
    mtime: u64,
    stats: Stats,
}

impl Clint {
    /// Creates a CLINT with all registers zero.
    pub fn new() -> Self {
        Clint {
            msip: 0,
            mtimecmp: u64::MAX,
            mtime: 0,
            stats: Stats::new("clint"),
        }
    }

    /// Advances `mtime` by `ticks` (the SoC harness drives this from the
    /// peripheral-domain clock).
    pub fn advance(&mut self, ticks: u64) {
        self.mtime = self.mtime.wrapping_add(ticks);
    }

    /// Whether the machine timer interrupt is pending.
    pub fn timer_pending(&self) -> bool {
        self.mtime >= self.mtimecmp
    }

    /// Whether the machine software interrupt is pending.
    pub fn software_pending(&self) -> bool {
        self.msip & 1 != 0
    }

    /// FNV-1a digest of the register state (`msip`, `mtimecmp`, `mtime`).
    /// Stats are excluded: they count accesses, not state.
    pub fn state_digest(&self) -> u64 {
        hulkv_sim::Fnv64::new()
            .write_u64(u64::from(self.msip))
            .write_u64(self.mtimecmp)
            .write_u64(self.mtime)
            .finish()
    }

    /// Serializes registers and stats.
    pub fn snapshot_json(&self) -> hulkv_sim::Json {
        use hulkv_sim::snap::{hex, stats_to_json};
        hulkv_sim::Json::obj([
            ("msip", hex(u64::from(self.msip))),
            ("mtimecmp", hex(self.mtimecmp)),
            ("mtime", hex(self.mtime)),
            ("stats", stats_to_json(&self.stats)),
        ])
    }

    /// Restores state written by [`Clint::snapshot_json`].
    ///
    /// # Errors
    ///
    /// On a malformed section.
    pub fn restore_json(&mut self, j: &hulkv_sim::Json) -> hulkv_sim::SnapResult<()> {
        use hulkv_sim::snap::{get, get_u64, restore_stats};
        self.msip = get_u64(j, "msip")? as u32;
        self.mtimecmp = get_u64(j, "mtimecmp")?;
        self.mtime = get_u64(j, "mtime")?;
        restore_stats(&mut self.stats, get(j, "stats")?)
    }
}

impl MemoryDevice for Clint {
    fn size_bytes(&self) -> u64 {
        SIZE
    }

    fn peek(&self, offset: u64, buf: &mut [u8]) -> Result<(), SimError> {
        if buf.len() > 8 {
            return Err(SimError::OutOfRange {
                what: "clint access width",
                value: buf.len() as u64,
                limit: 8,
            });
        }
        let value: u64 = match offset {
            MSIP => self.msip as u64,
            MTIMECMP => self.mtimecmp,
            MTIME => self.mtime,
            _ => 0,
        };
        buf.copy_from_slice(&value.to_le_bytes()[..buf.len()]);
        Ok(())
    }

    fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        let value: u64 = match offset {
            MSIP => self.msip as u64,
            MTIMECMP => self.mtimecmp,
            MTIME => self.mtime,
            _ => 0,
        };
        let bytes = value.to_le_bytes();
        if buf.len() > 8 {
            return Err(SimError::OutOfRange {
                what: "clint access width",
                value: buf.len() as u64,
                limit: 8,
            });
        }
        buf.copy_from_slice(&bytes[..buf.len()]);
        self.stats.inc("reads");
        Ok(Cycles::new(2))
    }

    fn write(&mut self, offset: u64, data: &[u8]) -> Result<Cycles, SimError> {
        let mut bytes = [0u8; 8];
        if data.len() > 8 {
            return Err(SimError::OutOfRange {
                what: "clint access width",
                value: data.len() as u64,
                limit: 8,
            });
        }
        bytes[..data.len()].copy_from_slice(data);
        let value = u64::from_le_bytes(bytes);
        match offset {
            MSIP => self.msip = value as u32 & 1,
            MTIMECMP => self.mtimecmp = value,
            MTIME => self.mtime = value,
            _ => {}
        }
        self.stats.inc("writes");
        Ok(Cycles::new(2))
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msip_sets_software_interrupt() {
        let mut c = Clint::new();
        assert!(!c.software_pending());
        c.write_u32(MSIP, 1).unwrap();
        assert!(c.software_pending());
        c.write_u32(MSIP, 0).unwrap();
        assert!(!c.software_pending());
    }

    #[test]
    fn mtime_readable_and_writable() {
        let mut c = Clint::new();
        c.advance(500);
        assert_eq!(c.read_u64(MTIME).unwrap().0, 500);
        c.write_u64(MTIME, 10).unwrap();
        assert_eq!(c.read_u64(MTIME).unwrap().0, 10);
    }

    #[test]
    fn timer_fires_at_compare() {
        let mut c = Clint::new();
        c.write_u64(MTIMECMP, 100).unwrap();
        c.advance(99);
        assert!(!c.timer_pending());
        c.advance(1);
        assert!(c.timer_pending());
    }

    #[test]
    fn unknown_offsets_read_zero() {
        let mut c = Clint::new();
        assert_eq!(c.read_u32(0x100).unwrap().0, 0);
        c.write_u32(0x100, 5).unwrap(); // ignored
        assert_eq!(c.read_u32(0x100).unwrap().0, 0);
    }
}
